package tlr

import (
	"fmt"
	"sync"

	"github.com/tracereuse/tlr/internal/service"
	"github.com/tracereuse/tlr/internal/workload"
)

// The batch facade: submit many (program, configuration) jobs at once
// and let the service layer fan them out over a worker pool, deduplicate
// identical jobs, and memoise results, so configuration sweeps pay for
// each distinct simulation once.  cmd/tlrserve serves the same API over
// HTTP/JSON.

// BatchJob is one simulation request.  Exactly one program field
// (Workload, Source or Prog) and exactly one configuration field (Study
// or RTM) must be set.
type BatchJob struct {
	// ID is an opaque label echoed in the result (defaults to the
	// job's index).
	ID string

	// Workload names a built-in benchmark (see Workloads).
	Workload string
	// Source is assembly text, assembled through the batch program
	// cache.
	Source string
	// Prog is an already-assembled program.
	Prog *Program

	// Study runs the reuse limit studies (as MeasureReuse).
	Study *StudyConfig
	// RTM runs a realistic RTM simulation (as SimulateRTM) with the
	// job's Skip/Budget bounds.
	RTM *RTMConfig
	// Skip and Budget bound an RTM simulation (ignored for Study jobs,
	// which carry their own inside StudyConfig).
	Skip, Budget uint64
}

// BatchResult is one finished BatchJob.
type BatchResult struct {
	// Index is the job's position in the submitted slice; results from
	// Measure are ordered by it.
	Index int
	ID    string
	// Study is set for Study jobs, RTM for RTM jobs.
	Study *StudyResult
	RTM   *RTMResult
	// Cached reports that the result came from the batch cache rather
	// than a fresh simulation.
	Cached bool
	Err    error
}

// BatchStats counts batch-service traffic.
type BatchStats struct {
	Submitted uint64 // jobs accepted
	Ran       uint64 // jobs actually simulated
	CacheHits uint64 // jobs answered from the result cache
	Coalesced uint64 // jobs folded into an identical in-flight run
	Errors    uint64 // jobs that failed
}

// BatchOptions sizes a Batcher.
type BatchOptions struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the result-cache capacity in jobs (0 = 4096).
	CacheSize int
}

// Batcher owns a batch simulation service: a worker pool plus program
// and result caches that persist across Measure calls.
type Batcher struct {
	svc *service.Service
}

// NewBatcher starts a batch service.  Close releases its workers.
func NewBatcher(opt BatchOptions) *Batcher {
	return &Batcher{svc: service.New(service.Options{
		Workers:     opt.Workers,
		ResultCache: opt.CacheSize,
	})}
}

// Close stops the Batcher's workers after in-flight jobs finish.
func (b *Batcher) Close() { b.svc.Close() }

// Stats returns a snapshot of the Batcher's traffic counters.
func (b *Batcher) Stats() BatchStats {
	st := b.svc.Stats()
	return BatchStats{
		Submitted: st.Submitted,
		Ran:       st.Ran,
		CacheHits: st.CacheHits,
		Coalesced: st.Coalesced,
		Errors:    st.Errors,
	}
}

// Measure runs a batch and returns the results ordered by job index,
// with the first failed job's error (results are still returned in
// full, so callers can inspect every job's outcome).
func (b *Batcher) Measure(jobs []BatchJob) ([]BatchResult, error) {
	stream, err := b.Stream(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(jobs))
	for r := range stream {
		out[r.Index] = r
	}
	for i := range out {
		if out[i].Err != nil {
			return out, fmt.Errorf("tlr: batch job %d (%s): %w", i, out[i].ID, out[i].Err)
		}
	}
	return out, nil
}

// Stream submits a batch and returns a channel streaming each result as
// its simulation finishes (completion order, exactly len(jobs) results).
// Malformed jobs fail the whole batch before any simulation starts.
func (b *Batcher) Stream(jobs []BatchJob) (<-chan BatchResult, error) {
	sjobs := make([]service.Job, len(jobs))
	study := make([]bool, len(jobs))
	for i, j := range jobs {
		sj, isStudy, err := b.convert(i, j)
		if err != nil {
			return nil, fmt.Errorf("tlr: batch job %d: %w", i, err)
		}
		sjobs[i] = sj
		study[i] = isStudy
	}
	batch := b.svc.Submit(sjobs, 0)
	out := make(chan BatchResult, len(jobs))
	go func() {
		defer close(out)
		for i := 0; i < batch.Len(); i++ {
			r := <-batch.Results()
			br := BatchResult{Index: r.Index, ID: r.ID, Cached: r.Cached, Err: r.Err}
			if r.Err == nil {
				if study[r.Index] {
					o := r.Value.(service.StudyOutput)
					br.Study = &StudyResult{ILR: o.ILR, TLR: o.TLR}
				} else {
					o := r.Value.(RTMResult)
					br.RTM = &o
				}
			}
			out <- br
		}
	}()
	return out, nil
}

// convert validates one BatchJob and builds its service job.
func (b *Batcher) convert(index int, j BatchJob) (service.Job, bool, error) {
	id := j.ID
	if id == "" {
		id = fmt.Sprint(index)
	}
	set := 0
	for _, on := range []bool{j.Workload != "", j.Source != "", j.Prog != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return service.Job{}, false, fmt.Errorf("exactly one of Workload, Source, Prog must be set (got %d)", set)
	}
	var (
		prog    *Program
		progKey string
		err     error
	)
	switch {
	case j.Workload != "":
		w, ok := workload.ByName(j.Workload)
		if !ok {
			return service.Job{}, false, fmt.Errorf("unknown workload %q", j.Workload)
		}
		if prog, err = w.Program(); err != nil {
			return service.Job{}, false, err
		}
		progKey = "workload:" + j.Workload
	case j.Source != "":
		if prog, err = b.svc.Program(j.Source); err != nil {
			return service.Job{}, false, err
		}
		progKey = service.Fingerprint(prog)
	default:
		prog = j.Prog
		progKey = service.Fingerprint(prog)
	}

	switch {
	case j.Study != nil && j.RTM == nil:
		s := j.Study
		if s.Budget == 0 {
			return service.Job{}, false, fmt.Errorf("StudyConfig.Budget must be positive")
		}
		return service.StudyJob(id, progKey, prog, service.StudyParams{
			Budget:       s.Budget,
			Skip:         s.Skip,
			Window:       s.Window,
			ILRLatencies: s.ILRLatencies,
			TLRVariants:  s.TLRVariants,
			Strict:       s.Strict,
			MaxRunLen:    s.MaxRunLen,
		}), true, nil
	case j.RTM != nil && j.Study == nil:
		if j.Budget == 0 {
			return service.Job{}, false, fmt.Errorf("RTM jobs need a positive Budget")
		}
		return service.RTMJob(id, progKey, prog, service.RTMParams{
			Config: *j.RTM,
			Skip:   j.Skip,
			Budget: j.Budget,
		}), false, nil
	default:
		return service.Job{}, false, fmt.Errorf("exactly one of Study, RTM must be set")
	}
}

// The package-level Batcher behind MeasureBatch, started on first use.
var (
	defaultBatcherOnce sync.Once
	defaultBatcher     *Batcher
)

// DefaultBatcher returns the shared package-level Batcher (GOMAXPROCS
// workers): every MeasureBatch call shares its worker pool and caches.
func DefaultBatcher() *Batcher {
	defaultBatcherOnce.Do(func() { defaultBatcher = NewBatcher(BatchOptions{}) })
	return defaultBatcher
}

// MeasureBatch runs a batch of simulation jobs on the shared Batcher:
// the jobs fan out across GOMAXPROCS workers and repeated jobs are
// answered from cache.  Results are ordered by job index.
func MeasureBatch(jobs []BatchJob) ([]BatchResult, error) {
	return DefaultBatcher().Measure(jobs)
}
