package tlr

import (
	"context"
	"io"
	"sync"

	"github.com/tracereuse/tlr/internal/metrics"
	"github.com/tracereuse/tlr/internal/service"
)

// The Batcher owns the batch simulation engine behind Run, RunBatch and
// StreamBatch: a worker pool plus program and result caches that persist
// across calls, so configuration sweeps pay for each distinct simulation
// once.  cmd/tlrserve serves the same API over HTTP/JSON.
//
// This file also keeps the pre-Request batch surface (BatchJob,
// Batcher.Measure, MeasureBatch) alive as thin deprecated wrappers.

// BatchJob is one simulation request in the deprecated batch surface.
//
// Deprecated: use Request, which additionally covers the Pipeline and VP
// kinds.  BatchJob remains as a conversion shim for existing callers.
type BatchJob struct {
	// ID is an opaque label echoed in the result (defaults to the
	// job's index).
	ID string

	// Workload names a built-in benchmark (see Workloads).
	Workload string
	// Source is assembly text, assembled through the batch program
	// cache.
	Source string
	// Prog is an already-assembled program.
	Prog *Program

	// Study runs the reuse limit studies (as MeasureReuse).
	Study *StudyConfig
	// RTM runs a realistic RTM simulation (as SimulateRTM) with the
	// job's Skip/Budget bounds.
	RTM *RTMConfig
	// Skip and Budget bound an RTM simulation (ignored for Study jobs,
	// which carry their own inside StudyConfig).
	Skip, Budget uint64
}

// request converts the deprecated job to the unified model, preserving
// BatchJob's documented quirk that Skip/Budget are ignored for Study
// jobs (Request treats setting both as an error).
func (j BatchJob) request() Request {
	r := Request{
		ID:       j.ID,
		Workload: j.Workload,
		Source:   j.Source,
		Prog:     j.Prog,
		Study:    j.Study,
		RTM:      j.RTM,
		Skip:     j.Skip,
		Budget:   j.Budget,
	}
	if j.Study != nil {
		r.Skip, r.Budget = 0, 0
	}
	return r
}

// BatchResult is one finished BatchJob.
//
// Deprecated: use Result, the unified form returned by Run, RunBatch and
// StreamBatch.
type BatchResult struct {
	// Index is the job's position in the submitted slice; results from
	// Measure are ordered by it.
	Index int
	ID    string
	// Study is set for Study jobs, RTM for RTM jobs.
	Study *StudyResult
	RTM   *RTMResult
	// Cached reports that the result came from the batch cache rather
	// than a fresh simulation.
	Cached bool
	Err    error
}

// BatchStats counts batch-service traffic.
type BatchStats struct {
	Submitted   uint64 // requests accepted
	Ran         uint64 // requests actually simulated
	CacheHits   uint64 // requests answered from the result cache
	Coalesced   uint64 // requests folded into an identical in-flight run
	Errors      uint64 // requests that failed
	Programs    int    // assembled programs currently cached
	Results     int    // results currently cached
	Traces      int    // recorded traces in the store's memory tier
	TraceBytes  int64  // encoded bytes held by the memory tier
	TraceHits   uint64 // trace-store lookups that found the digest
	TraceMisses uint64 // trace-store lookups for unknown digests

	TraceDisk      int    // recorded traces in the store's disk tier
	TraceDiskBytes int64  // file bytes held by the disk tier
	TraceSpills    uint64 // traces written through to the disk tier
	TracePromotes  uint64 // disk hits decoded back into the memory tier

	TracePeerFetches uint64 // traces pulled from peers into the local store
	TracePeerRejects uint64 // peer trace bodies rejected (invalid or wrong digest)

	ResultsOnDisk    int    // results in the persistent result cache
	ResultDiskHits   uint64 // requests answered from the persistent result cache
	ResultDiskWrites uint64 // results written through to the persistent cache

	AnalyzeRuns     uint64 // reuse-distance analyses actually computed
	AnalyzeHits     uint64 // analyses answered from cache (or coalesced)
	IngestedTraces  uint64 // foreign traces ingested into the store
	IngestedRecords uint64 // canonical records those ingests produced
	IngestRejects   uint64 // malformed foreign lines dropped (lenient mode)

	InflightJobs int64  // requests currently reserved via Reserve
	MaxInflight  int    // admission budget (0: unlimited)
	Shed         uint64 // reservations refused with ErrOverloaded
}

// BatchOptions sizes a Batcher.
type BatchOptions struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the result-cache capacity in requests (0 = 4096).
	CacheSize int
	// TraceStoreBytes bounds the memory tier of the digest-addressed
	// trace store behind StoreTrace/TraceRef by total encoded bytes
	// (0 = 64 MiB).
	TraceStoreBytes int64
	// TraceDir, when non-empty, enables the trace store's disk tier: a
	// directory of digest-named version-3 trace files behind the memory
	// LRU.  Stored traces are written through to it, memory evictions
	// become free drops, and TraceRef resolution falls through
	// memory → disk, replaying large disk-tier traces as incrementally
	// decoded streams in O(batch) memory.  The directory must exist and
	// be writable.
	TraceDir string
	// ResultDir, when non-empty, enables the persistent result cache:
	// typed request results are written through to disk and re-indexed
	// at startup, so a restarted Batcher answers warm-cache requests
	// without re-simulating.  The directory must exist and be writable.
	ResultDir string
	// PeerFetch, when non-nil, extends TraceRef resolution past the
	// local store tiers: on a local miss it is asked for the digest's
	// container stream, skipping the peers in exclude ((nil, "", nil)
	// = no peer holds it); it returns the serving peer so a body that
	// fails validation can be retried with that peer excluded.
	// Fetched bodies are validated and digest-checked before they are
	// cached, so the transport need not be trusted.  cmd/tlrserve
	// wires this to the cluster fabric.
	PeerFetch func(digest string, exclude []string) (io.ReadCloser, string, error)
	// MaxInflight bounds admission: Reserve fails with ErrOverloaded
	// once this many requests are reserved and not yet released.
	// 0 = unlimited.  HTTP front doors map the failure to 429.
	MaxInflight int
}

// ErrOverloaded reports a Reserve refused because the in-flight
// request budget (BatchOptions.MaxInflight) is exhausted.
var ErrOverloaded = service.ErrOverloaded

// Batcher owns a batch simulation service: a worker pool plus program
// and result caches that persist across Run/RunBatch/StreamBatch calls.
type Batcher struct {
	svc *service.Service
}

// NewBatcher starts a batch service.  Close releases its workers.
func NewBatcher(opt BatchOptions) *Batcher {
	return &Batcher{svc: service.New(service.Options{
		Workers:         opt.Workers,
		ResultCache:     opt.CacheSize,
		TraceCacheBytes: opt.TraceStoreBytes,
		TraceDir:        opt.TraceDir,
		ResultDir:       opt.ResultDir,
		PeerFetch:       opt.PeerFetch,
		MaxInflight:     opt.MaxInflight,
	})}
}

// Close stops the Batcher's workers after in-flight requests finish.
func (b *Batcher) Close() { b.svc.Close() }

// Workers returns the worker-pool size.
func (b *Batcher) Workers() int { return b.svc.Workers() }

// Reserve claims admission for n requests against the MaxInflight
// budget, returning a release function the caller must invoke (once)
// when the work is finished.  It fails with an error wrapping
// ErrOverloaded when the budget is exhausted.
func (b *Batcher) Reserve(n int) (release func(), err error) { return b.svc.Reserve(n) }

// TraceDigests returns every digest the local trace store holds
// (memory and disk tiers, deduplicated, sorted).  The cluster repair
// loop scans it.
func (b *Batcher) TraceDigests() []string { return b.svc.TraceDigests() }

// Metrics returns the Batcher's metrics registry — the single source
// behind both Stats and the Prometheus exposition.  In-module servers
// (cmd/tlrserve, the cluster fabric) register their own instruments on
// it so one scrape covers every layer.
func (b *Batcher) Metrics() *metrics.Registry { return b.svc.Metrics() }

// WriteMetrics writes the Batcher's metrics in Prometheus text format.
func (b *Batcher) WriteMetrics(w io.Writer) error { return b.svc.Metrics().WritePrometheus(w) }

// Stats returns a snapshot of the Batcher's traffic counters.
func (b *Batcher) Stats() BatchStats {
	st := b.svc.Stats()
	return BatchStats{
		Submitted:      st.Submitted,
		Ran:            st.Ran,
		CacheHits:      st.CacheHits,
		Coalesced:      st.Coalesced,
		Errors:         st.Errors,
		Programs:       st.Programs,
		Results:        st.Results,
		Traces:         st.Traces,
		TraceBytes:     st.TraceBytes,
		TraceHits:      st.TraceHits,
		TraceMisses:    st.TraceMisses,
		TraceDisk:      st.TraceDisk,
		TraceDiskBytes: st.TraceDiskBytes,
		TraceSpills:    st.TraceSpills,
		TracePromotes:  st.TracePromotes,

		TracePeerFetches: st.TracePeerFetches,
		TracePeerRejects: st.TracePeerRejects,

		ResultsOnDisk:    st.ResultsOnDisk,
		ResultDiskHits:   st.ResultDiskHits,
		ResultDiskWrites: st.ResultDiskWrites,

		AnalyzeRuns:     st.AnalyzeRuns,
		AnalyzeHits:     st.AnalyzeHits,
		IngestedTraces:  st.IngestedTraces,
		IngestedRecords: st.IngestedRecords,
		IngestRejects:   st.IngestRejects,

		InflightJobs: st.InflightJobs,
		MaxInflight:  st.MaxInflight,
		Shed:         st.Shed,
	}
}

// batchResult narrows a unified Result to the deprecated form.
func batchResult(r Result) BatchResult {
	return BatchResult{
		Index:  r.Index,
		ID:     r.ID,
		Study:  r.Study,
		RTM:    r.RTM,
		Cached: r.Cached,
		Err:    r.Err,
	}
}

// Measure runs a batch and returns the results ordered by job index.
// If any jobs failed, the returned error joins every failure (results
// are still returned in full, so callers can inspect every job's
// outcome).
//
// Deprecated: use RunBatch, which takes a context and covers all four
// simulation kinds.
func (b *Batcher) Measure(jobs []BatchJob) ([]BatchResult, error) {
	res, err := b.RunBatch(context.Background(), requests(jobs))
	if res == nil {
		return nil, err
	}
	out := make([]BatchResult, len(res))
	for i, r := range res {
		out[i] = batchResult(r)
	}
	return out, err
}

// Stream submits a batch and returns a channel streaming each result as
// its simulation finishes (completion order, exactly len(jobs) results).
// Malformed jobs fail the whole batch before any simulation starts.
//
// Deprecated: use StreamBatch, which takes a context and covers all
// four simulation kinds.
func (b *Batcher) Stream(jobs []BatchJob) (<-chan BatchResult, error) {
	stream, err := b.StreamBatch(context.Background(), requests(jobs))
	if err != nil {
		return nil, err
	}
	out := make(chan BatchResult, cap(stream))
	go func() {
		defer close(out)
		for r := range stream {
			out <- batchResult(r)
		}
	}()
	return out, nil
}

func requests(jobs []BatchJob) []Request {
	reqs := make([]Request, len(jobs))
	for i, j := range jobs {
		reqs[i] = j.request()
	}
	return reqs
}

// The package-level Batcher behind Run/RunBatch/StreamBatch, started on
// first use.
var (
	defaultBatcherOnce sync.Once
	defaultBatcher     *Batcher
)

// DefaultBatcher returns the shared package-level Batcher (GOMAXPROCS
// workers): every package-level Run, RunBatch and StreamBatch call
// shares its worker pool and caches.
func DefaultBatcher() *Batcher {
	defaultBatcherOnce.Do(func() { defaultBatcher = NewBatcher(BatchOptions{}) })
	return defaultBatcher
}

// MeasureBatch runs a batch of simulation jobs on the shared Batcher.
//
// Deprecated: use RunBatch.
func MeasureBatch(jobs []BatchJob) ([]BatchResult, error) {
	return DefaultBatcher().Measure(jobs)
}
