package tlr

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// The wire layer: a versioned JSON encoding of Request and Result,
// shared by this package and cmd/tlrserve, so any JSON client can drive
// the server (and a Go client can decode its responses) without a
// bespoke schema.  Request and Result implement json.Marshaler and
// json.Unmarshaler in terms of it.
//
// The format is additive-only within a version: decoders ignore unknown
// fields, and WireVersion only bumps on an incompatible change.  A
// request may omit "v" (treated as the current version) and "kind"
// (inferred from which configuration is present); when both are given
// they must agree with the payload.

// WireVersion is the JSON encoding version emitted by Request and
// Result, and the highest version their decoders accept.
const WireVersion = 1

// TraceRefVersion is the encoding version of a trace reference (the
// "trace" object inside a request), versioned independently of the
// surrounding request so trace transport can evolve (e.g. chunked
// upload) without a wire-wide bump.
const TraceRefVersion = 1

// traceJSON is the versioned trace-reference encoding.  A reference
// names the stream by content digest, carries the encoded trace file
// inline (base64), or both; at least one must be present.  Digest-only
// references resolve against the executing Batcher's (or server's)
// trace store — upload once with POST /v1/traces, sweep by digest.
type traceJSON struct {
	V      int    `json:"v,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Data is a complete trace file in any container version; writers
	// emit the compressed plane-split (version-4) container, so inline
	// payloads spend a fraction of the canonical bytes on the wire.
	Data []byte `json:"data,omitempty"`
}

type geometryJSON struct {
	Sets        int `json:"sets"`
	PCWays      int `json:"pcWays"`
	TracesPerPC int `json:"tracesPerPC"`
}

type latencyJSON struct {
	Const float64 `json:"const,omitempty"`
	K     float64 `json:"k,omitempty"`
}

type studyJSON struct {
	Budget       uint64        `json:"budget,omitempty"`
	Skip         uint64        `json:"skip,omitempty"`
	Window       int           `json:"window,omitempty"`
	ILRLatencies []float64     `json:"ilrLatencies,omitempty"`
	TLRVariants  []latencyJSON `json:"tlrVariants,omitempty"`
	// TLRConst and TLRProp are the pre-versioned spelling of
	// TLRVariants, still accepted on input (constants first, then
	// proportionals, as the original server appended them).
	TLRConst  []float64 `json:"tlrConst,omitempty"`
	TLRProp   []float64 `json:"tlrProp,omitempty"`
	Strict    bool      `json:"strict,omitempty"`
	MaxRunLen int       `json:"maxRunLen,omitempty"`
	// ILPWindows requests the raw dynamic-dependence-analysis base
	// machine at these window sizes alongside the reuse studies.
	ILPWindows []int `json:"ilpWindows,omitempty"`
}

type rtmJSON struct {
	Geometry          geometryJSON `json:"geometry"`
	Heuristic         string       `json:"heuristic,omitempty"`
	N                 int          `json:"n,omitempty"`
	MinLen            int          `json:"minLen,omitempty"`
	InvalidateOnWrite bool         `json:"invalidateOnWrite,omitempty"`
}

type pipelineJSON struct {
	FetchWidth      int      `json:"fetchWidth,omitempty"`
	Window          int      `json:"window,omitempty"`
	FrontLat        int      `json:"frontLat,omitempty"`
	ReuseLat        float64  `json:"reuseLat,omitempty"`
	WaitForOperands bool     `json:"waitForOperands,omitempty"`
	RTM             *rtmJSON `json:"rtm,omitempty"`
}

type vpJSON struct {
	Window  int     `json:"window,omitempty"`
	PredLat float64 `json:"predLat,omitempty"`
}

// analyzeJSON is the reuse-distance analysis configuration: empty today
// (the analysis has no knobs), present so "analyze": {} selects the kind
// and future knobs stay additive.
type analyzeJSON struct{}

type requestJSON struct {
	V        int           `json:"v,omitempty"`
	ID       string        `json:"id,omitempty"`
	Workload string        `json:"workload,omitempty"`
	Source   string        `json:"source,omitempty"`
	Trace    *traceJSON    `json:"trace,omitempty"`
	Kind     string        `json:"kind,omitempty"`
	Study    *studyJSON    `json:"study,omitempty"`
	RTM      *rtmJSON      `json:"rtm,omitempty"`
	Pipeline *pipelineJSON `json:"pipeline,omitempty"`
	VP       *vpJSON       `json:"vp,omitempty"`
	Analyze  *analyzeJSON  `json:"analyze,omitempty"`
	Skip     uint64        `json:"skip,omitempty"`
	Budget   uint64        `json:"budget,omitempty"`
}

type resultJSON struct {
	V         int             `json:"v,omitempty"`
	Index     int             `json:"index"`
	ID        string          `json:"id"`
	Kind      string          `json:"kind,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Node      string          `json:"node,omitempty"`
	Forwarded bool            `json:"forwarded,omitempty"`
	Study     *StudyResult    `json:"study,omitempty"`
	RTM       *RTMResult      `json:"rtm,omitempty"`
	Pipe      *PipelineResult `json:"pipeline,omitempty"`
	VP        *VPResult       `json:"vp,omitempty"`
	Analyze   *AnalyzeResult  `json:"analyze,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// HeuristicName returns the wire spelling of a collection heuristic
// ("ILR NE", "ILR EXP", "IEXP").
func HeuristicName(h Heuristic) string {
	switch h {
	case ILRNE:
		return "ILR NE"
	case ILREXP:
		return "ILR EXP"
	case IEXP:
		return "IEXP"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// ParseHeuristic parses a wire heuristic name, accepting the paper's
// spellings ("ILR NE", "ILR EXP", "I(n) EXP") as well as the compact
// forms ("ILRNE", "ILREXP", "IEXP").  Empty means ILR NE.
func ParseHeuristic(s string) (Heuristic, error) {
	switch strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(s), "_", " ")) {
	case "", "ILR NE", "ILRNE":
		return ILRNE, nil
	case "ILR EXP", "ILREXP":
		return ILREXP, nil
	case "IEXP", "I(N) EXP", "I EXP":
		return IEXP, nil
	default:
		return 0, fmt.Errorf("tlr: unknown heuristic %q", s)
	}
}

func checkWireVersion(v int) error {
	if v < 0 || v > WireVersion {
		return fmt.Errorf("tlr: unsupported wire version %d (this build speaks <= %d)", v, WireVersion)
	}
	return nil
}

func toRTMJSON(c *RTMConfig) *rtmJSON {
	if c == nil {
		return nil
	}
	return &rtmJSON{
		Geometry: geometryJSON{
			Sets:        c.Geometry.Sets,
			PCWays:      c.Geometry.PCWays,
			TracesPerPC: c.Geometry.TracesPerPC,
		},
		Heuristic:         HeuristicName(c.Heuristic),
		N:                 c.N,
		MinLen:            c.MinLen,
		InvalidateOnWrite: c.InvalidateOnWrite,
	}
}

func fromRTMJSON(j *rtmJSON) (*RTMConfig, error) {
	if j == nil {
		return nil, nil
	}
	h, err := ParseHeuristic(j.Heuristic)
	if err != nil {
		return nil, err
	}
	return &RTMConfig{
		Geometry: Geometry{
			Sets:        j.Geometry.Sets,
			PCWays:      j.Geometry.PCWays,
			TracesPerPC: j.Geometry.TracesPerPC,
		},
		Heuristic:         h,
		N:                 j.N,
		MinLen:            j.MinLen,
		InvalidateOnWrite: j.InvalidateOnWrite,
	}, nil
}

// MarshalJSON encodes the request in the versioned wire format.  A
// request carrying an assembled Prog is encoded as its disassembly
// (assembly round-trips exactly), and one carrying a trace source is
// encoded as a versioned trace reference — digest-only for TraceRef,
// digest plus the inline trace bytes otherwise — so any request can
// cross the wire.
func (r Request) MarshalJSON() ([]byte, error) {
	j := requestJSON{
		V:        WireVersion,
		ID:       r.ID,
		Workload: r.Workload,
		Source:   r.Source,
		Kind:     string(r.Kind()),
		Skip:     r.Skip,
		Budget:   r.Budget,
	}
	if r.Prog != nil {
		if r.Source != "" || r.Workload != "" || r.Trace != nil {
			return nil, errors.New("tlr: request sets more than one of Workload, Source, Prog, Trace")
		}
		j.Source = Disassemble(r.Prog)
	}
	if r.Trace != nil {
		if r.Source != "" || r.Workload != "" {
			return nil, errors.New("tlr: request sets more than one of Workload, Source, Prog, Trace")
		}
		tj, err := marshalTraceSource(r.Trace)
		if err != nil {
			return nil, err
		}
		j.Trace = tj
	}
	if s := r.Study; s != nil {
		sj := &studyJSON{
			Budget:       s.Budget,
			Skip:         s.Skip,
			Window:       s.Window,
			ILRLatencies: s.ILRLatencies,
			Strict:       s.Strict,
			MaxRunLen:    s.MaxRunLen,
			ILPWindows:   s.ILPWindows,
		}
		for _, v := range s.TLRVariants {
			sj.TLRVariants = append(sj.TLRVariants, latencyJSON{Const: v.Const, K: v.K})
		}
		j.Study = sj
	}
	j.RTM = toRTMJSON(r.RTM)
	if p := r.Pipeline; p != nil {
		j.Pipeline = &pipelineJSON{
			FetchWidth:      p.FetchWidth,
			Window:          p.Window,
			FrontLat:        p.FrontLat,
			ReuseLat:        p.ReuseLat,
			WaitForOperands: p.WaitForOperands,
			RTM:             toRTMJSON(p.RTM),
		}
	}
	if v := r.VP; v != nil {
		j.VP = &vpJSON{Window: v.Window, PredLat: v.PredLat}
	}
	if r.Analyze != nil {
		j.Analyze = &analyzeJSON{}
	}
	return json.Marshal(j)
}

// marshalTraceSource encodes a trace source as a wire reference.  A
// TraceRef stays a bare digest (the bytes live in the server's store);
// every other source — composites included — is materialised and
// shipped inline alongside its digest, so the receiver can verify what
// it decodes.
func marshalTraceSource(src TraceSource) (*traceJSON, error) {
	if ref, ok := src.(refSource); ok {
		return &traceJSON{V: TraceRefVersion, Digest: string(ref)}, nil
	}
	t, err := materialize(nil, src)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return nil, err
	}
	return &traceJSON{V: TraceRefVersion, Digest: t.Digest(), Data: buf.Bytes()}, nil
}

// UnmarshalJSON decodes the versioned wire format.
func (r *Request) UnmarshalJSON(data []byte) error {
	var j requestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if err := checkWireVersion(j.V); err != nil {
		return err
	}
	out := Request{
		ID:       j.ID,
		Workload: j.Workload,
		Source:   j.Source,
		Skip:     j.Skip,
		Budget:   j.Budget,
	}
	if tj := j.Trace; tj != nil {
		if tj.V < 0 || tj.V > TraceRefVersion {
			return fmt.Errorf("tlr: unsupported trace reference version %d (this build speaks <= %d)", tj.V, TraceRefVersion)
		}
		switch {
		case len(tj.Data) > 0:
			t, err := ReadTrace(bytes.NewReader(tj.Data))
			if err != nil {
				return fmt.Errorf("tlr: decoding inline trace: %w", err)
			}
			if tj.Digest != "" && tj.Digest != t.Digest() {
				return fmt.Errorf("tlr: inline trace digest mismatch: reference says %s, data is %s", tj.Digest, t.Digest())
			}
			out.Trace = t
		case tj.Digest != "":
			out.Trace = TraceRef(tj.Digest)
		default:
			return errors.New("tlr: trace reference needs a digest or inline data")
		}
	}
	if s := j.Study; s != nil {
		cfg := &StudyConfig{
			Budget:       s.Budget,
			Skip:         s.Skip,
			Window:       s.Window,
			ILRLatencies: s.ILRLatencies,
			Strict:       s.Strict,
			MaxRunLen:    s.MaxRunLen,
			ILPWindows:   s.ILPWindows,
		}
		for _, v := range s.TLRVariants {
			cfg.TLRVariants = append(cfg.TLRVariants, Latency{Const: v.Const, K: v.K})
		}
		for _, c := range s.TLRConst {
			cfg.TLRVariants = append(cfg.TLRVariants, ConstLatency(c))
		}
		for _, k := range s.TLRProp {
			cfg.TLRVariants = append(cfg.TLRVariants, PropLatency(k))
		}
		out.Study = cfg
	}
	var err error
	if out.RTM, err = fromRTMJSON(j.RTM); err != nil {
		return err
	}
	if p := j.Pipeline; p != nil {
		cfg := &PipelineConfig{
			FetchWidth:      p.FetchWidth,
			Window:          p.Window,
			FrontLat:        p.FrontLat,
			ReuseLat:        p.ReuseLat,
			WaitForOperands: p.WaitForOperands,
		}
		if cfg.RTM, err = fromRTMJSON(p.RTM); err != nil {
			return err
		}
		out.Pipeline = cfg
	}
	if v := j.VP; v != nil {
		out.VP = &VPConfig{Window: v.Window, PredLat: v.PredLat}
	}
	if j.Analyze != nil {
		out.Analyze = &AnalyzeConfig{}
	}
	if j.Kind != "" && j.Kind != string(out.Kind()) {
		return fmt.Errorf("tlr: request kind %q does not match its configuration (%q)", j.Kind, out.Kind())
	}
	*r = out
	return nil
}

// MarshalJSON encodes the result in the versioned wire format; Err
// becomes an "error" string.
func (r Result) MarshalJSON() ([]byte, error) {
	j := resultJSON{
		V:         WireVersion,
		Index:     r.Index,
		ID:        r.ID,
		Kind:      string(r.Kind),
		Cached:    r.Cached,
		Node:      r.Node,
		Forwarded: r.Forwarded,
		Study:     r.Study,
		RTM:       r.RTM,
		Pipe:      r.Pipeline,
		VP:        r.VP,
		Analyze:   r.Analyze,
	}
	if r.Err != nil {
		j.Error = r.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the versioned wire format; a non-empty "error"
// becomes an opaque error value.
func (r *Result) UnmarshalJSON(data []byte) error {
	var j resultJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if err := checkWireVersion(j.V); err != nil {
		return err
	}
	*r = Result{
		Index:     j.Index,
		ID:        j.ID,
		Kind:      Kind(j.Kind),
		Cached:    j.Cached,
		Node:      j.Node,
		Forwarded: j.Forwarded,
		Study:     j.Study,
		RTM:       j.RTM,
		Pipeline:  j.Pipe,
		VP:        j.VP,
		Analyze:   j.Analyze,
	}
	if j.Error != "" {
		r.Err = errors.New(j.Error)
	}
	return nil
}
