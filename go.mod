module github.com/tracereuse/tlr

go 1.24
