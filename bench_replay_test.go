package tlr_test

// An external test package so the benchmark can share the grid
// definition with cmd/tlrexp through internal/replaybench (which
// imports tlr, so an in-package test would be an import cycle).

import (
	"context"
	"sync"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/replaybench"
)

var (
	replayBenchOnce  sync.Once
	replayBenchTrace *tlr.Trace
	replayBenchErr   error
)

// BenchmarkReplayVsExecute compares the two ways to drive the deep-skip
// 100k-instruction analysis grid (see internal/replaybench): live
// execution, where every cell re-simulates skip+budget instructions,
// versus replay of a single recording, where each cell seeks and
// decodes only its measured window.  The recording is made once outside
// the timers, mirroring the workflow it models; cmd/tlrexp -bench-out
// exports the same comparison into BENCH_ci.json, where CI enforces
// replay >= 2x.
func BenchmarkReplayVsExecute(b *testing.B) {
	ctx := context.Background()
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batcher := tlr.NewBatcher(tlr.BatchOptions{Workers: 1})
			if _, err := batcher.RunBatch(ctx, replaybench.Grid(nil)); err != nil {
				b.Fatal(err)
			}
			batcher.Close()
		}
	})
	b.Run("replay", func(b *testing.B) {
		replayBenchOnce.Do(func() {
			replayBenchTrace, replayBenchErr = tlr.Record(ctx, replaybench.RecordSpec())
		})
		if replayBenchErr != nil {
			b.Fatal(replayBenchErr)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batcher := tlr.NewBatcher(tlr.BatchOptions{Workers: 1})
			if _, err := batcher.RunBatch(ctx, replaybench.Grid(replayBenchTrace)); err != nil {
				b.Fatal(err)
			}
			batcher.Close()
		}
	})
}
