package tlr_test

// An external test package so the benchmark can share the grid
// definition with cmd/tlrexp through internal/replaybench (which
// imports tlr, so an in-package test would be an import cycle).

import (
	"context"
	"sync"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/replaybench"
)

var (
	replayBenchOnce  sync.Once
	replayBenchTrace *tlr.Trace
	replayBenchErr   error
)

// benchRecording records the shared stream once across all
// sub-benchmarks (the workflow the benchmark models records once too).
func benchRecording(b *testing.B) *tlr.Trace {
	b.Helper()
	replayBenchOnce.Do(func() {
		replayBenchTrace, replayBenchErr = tlr.Record(context.Background(), replaybench.RecordSpec())
	})
	if replayBenchErr != nil {
		b.Fatal(replayBenchErr)
	}
	return replayBenchTrace
}

func runGrid(b *testing.B, reqs []tlr.Request) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		batcher := tlr.NewBatcher(tlr.BatchOptions{Workers: 1})
		if _, err := batcher.RunBatch(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		batcher.Close()
	}
}

// BenchmarkReplayVsExecute compares the two ways to drive the
// 100k-instruction analysis grid (see internal/replaybench) at both
// measurement depths: live execution, where every cell re-simulates
// skip+budget instructions, versus replay of a single recording, where
// each cell seeks the recording and decodes only its measured window.
// The recording is made once outside the timers, mirroring the workflow
// it models; cmd/tlrexp -bench-out exports the same comparisons into
// BENCH_ci.json, where CI enforces deep-skip replay >= 2x and
// shallow-skip parity (>= 0.9x; with a 2000-instruction warm-up there
// is nothing to amortise, so the grid ratio is bounded by the analysis
// cost both sides share — what v3 fixed is that decode no longer loses
// this comparison by itself).
func BenchmarkReplayVsExecute(b *testing.B) {
	b.Run("deep/execute", func(b *testing.B) { runGrid(b, replaybench.Grid(nil)) })
	b.Run("deep/replay", func(b *testing.B) {
		rec := benchRecording(b)
		b.ResetTimer()
		runGrid(b, replaybench.Grid(rec))
	})
	b.Run("shallow/execute", func(b *testing.B) { runGrid(b, replaybench.ShallowGrid(nil)) })
	b.Run("shallow/replay", func(b *testing.B) {
		rec := benchRecording(b)
		b.ResetTimer()
		runGrid(b, replaybench.ShallowGrid(rec))
	})
}
