package tlr

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRequestWireRoundTrip marshals one request of every kind and
// decodes it back, checking the semantic payload survives.
func TestRequestWireRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: "s", Workload: "gcc", Study: &StudyConfig{
			Budget: 1000, Skip: 10, Window: 256,
			ILRLatencies: []float64{1, 2},
			TLRVariants:  []Latency{ConstLatency(1), PropLatency(0.5)},
			Strict:       true, MaxRunLen: 16,
		}},
		{ID: "r", Workload: "li", RTM: &RTMConfig{
			Geometry: Geometry4K, Heuristic: IEXP, N: 4, MinLen: 2, InvalidateOnWrite: true,
		}, Skip: 100, Budget: 2000},
		{ID: "p", Workload: "li", Pipeline: &PipelineConfig{
			FetchWidth: 8, Window: 128, FrontLat: 3, ReuseLat: 2, WaitForOperands: true,
			RTM: &RTMConfig{Geometry: Geometry512, Heuristic: ILREXP},
		}, Budget: 2000},
		{ID: "v", Workload: "li", VP: &VPConfig{Window: 64, PredLat: 2}, Budget: 2000},
	}
	for _, req := range reqs {
		t.Run(string(req.Kind()), func(t *testing.T) {
			data, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), `"v":1`) {
				t.Errorf("wire form must be versioned: %s", data)
			}
			if !strings.Contains(string(data), `"kind":"`+string(req.Kind())+`"`) {
				t.Errorf("wire form must name its kind: %s", data)
			}
			var back Request
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(req, back) {
				t.Errorf("round trip changed the request:\nin  %+v\nout %+v", req, back)
			}
		})
	}
}

// TestRequestWireProgBecomesSource: a request carrying an assembled
// program crosses the wire as its disassembly, and the decoded request
// still runs to the same result.
func TestRequestWireProgBecomesSource(t *testing.T) {
	prog, err := Assemble(testLoop)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Prog: prog, VP: &VPConfig{}, Budget: 500}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Prog != nil || back.Source == "" {
		t.Fatalf("prog should travel as source: %+v", back)
	}
	reprog, err := Assemble(back.Source)
	if err != nil {
		t.Fatalf("wire source does not assemble: %v", err)
	}
	if len(reprog.Insts) != len(prog.Insts) {
		t.Errorf("wire source assembles to %d insts, want %d", len(reprog.Insts), len(prog.Insts))
	}
}

// TestRequestWireCompat: the pre-versioned server spelling — explicit
// kind, tlrConst/tlrProp latency lists, no "v" — still decodes.
func TestRequestWireCompat(t *testing.T) {
	const legacy = `{"id": "cell1", "workload": "gcc", "kind": "study",
		"study": {"budget": 1000, "window": 256, "tlrConst": [1, 2], "tlrProp": [0.5]}}`
	var req Request
	if err := json.Unmarshal([]byte(legacy), &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind() != KindStudy || req.Study.Budget != 1000 {
		t.Fatalf("bad decode: %+v", req)
	}
	want := []Latency{ConstLatency(1), ConstLatency(2), PropLatency(0.5)}
	if !reflect.DeepEqual(req.Study.TLRVariants, want) {
		t.Errorf("variants = %v, want %v", req.Study.TLRVariants, want)
	}
}

// TestRequestWireRejects: future versions and kind/config mismatches
// are decode errors, not silent misreads.
func TestRequestWireRejects(t *testing.T) {
	for _, bad := range []string{
		`{"v": 2, "workload": "li", "vp": {}, "budget": 1}`,
		`{"kind": "rtm", "workload": "li", "vp": {}, "budget": 1}`,
		`{"kind": "nonsense", "workload": "li", "vp": {}, "budget": 1}`,
		`{"workload": "li", "rtm": {"heuristic": "bogus"}, "budget": 1}`,
	} {
		var req Request
		if err := json.Unmarshal([]byte(bad), &req); err == nil {
			t.Errorf("%s: expected decode error", bad)
		}
	}
}

// TestResultWireRoundTrip checks results (including errors) survive the
// wire.
func TestResultWireRoundTrip(t *testing.T) {
	ok := Result{Index: 3, ID: "x", Kind: KindVP, Cached: true,
		VP: &VPResult{Instructions: 10, Predicted: 4, Speedup: 1.5}}
	data, err := json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ok, back) {
		t.Errorf("round trip changed the result:\nin  %+v\nout %+v", ok, back)
	}

	fail := Result{Index: 1, ID: "y", Kind: KindRTM, Err: errors.New("boom")}
	data, err = json.Marshal(fail)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "boom" {
		t.Errorf("error lost on the wire: %+v", back)
	}
}

// TestHeuristicNames: every heuristic's wire name parses back to itself,
// and the paper's spellings are accepted.
func TestHeuristicNames(t *testing.T) {
	for _, h := range []Heuristic{ILRNE, ILREXP, IEXP} {
		got, err := ParseHeuristic(HeuristicName(h))
		if err != nil || got != h {
			t.Errorf("%v: parse(name) = %v, %v", h, got, err)
		}
	}
	for s, want := range map[string]Heuristic{
		"":         ILRNE,
		"ilr ne":   ILRNE,
		"ILR_EXP":  ILREXP,
		"I(n) EXP": IEXP,
		"iexp":     IEXP,
	} {
		if got, err := ParseHeuristic(s); err != nil || got != want {
			t.Errorf("ParseHeuristic(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseHeuristic("bogus"); err == nil {
		t.Error("bogus heuristic should fail to parse")
	}
}
