// Package tlr is a Go reproduction of "Trace-Level Reuse" (A. González,
// J. Tubella, C. Molina; ICPP 1999): data-value reuse at the granularity
// of dynamic instruction traces, evaluated both as a limit study and as a
// realistic finite Reuse Trace Memory (RTM).
//
// The package is the public facade over the repository's subsystems:
//
//   - an Alpha-inspired 64-bit RISC ISA, assembler and functional
//     simulator (the substitute for the paper's ATOM-instrumented Alpha
//     binaries);
//   - the dynamic-dependence-analysis timing model (Austin & Sohi style)
//     with finite and infinite instruction windows;
//   - instruction-level and trace-level reuse limit engines with
//     infinite history tables (paper §4.2–4.5);
//   - the realistic set-associative RTM with the paper's three dynamic
//     trace-collection heuristics (paper §3, §4.6), including sharded
//     variants of the RTM and history tables safe to drive from many
//     goroutines;
//   - the 14-benchmark workload suite named after the paper's SPEC95
//     subset;
//   - a batch simulation service behind one request model.
//
// # The Request/Run model
//
// Every simulation is a Request: an instruction-stream input (a
// built-in Workload name, assembly Source, an assembled Prog, or a
// recorded Trace source) plus exactly one configuration naming the
// simulation kind —
//
//   - Study: the reuse limit studies of Figures 3–8;
//   - RTM: the realistic finite Reuse Trace Memory of Figure 9;
//   - Pipeline: the execution-driven Figure 2 processor model;
//   - VP: the last-value-prediction limit study (§1's
//     speculation-vs-reuse comparison).
//
// Study, RTM and VP are trace-driven: their engines consume the dynamic
// instruction stream and nothing else, so any TraceSource — an
// in-memory recording from Record, a trace file (TraceFile/OpenTrace),
// an io.Reader (TraceReader/ReadTrace), or a digest reference into a
// trace store (TraceRef) — can stand in for the program, exactly as the
// paper's engines analysed ATOM-recorded trace files offline.  A
// recorded sweep replays the stream instead of re-simulating (record
// once, analyse across the whole configuration grid) and returns
// results identical to live execution, sharing its result-cache
// entries.  Pipeline models fetch and execution itself and rejects
// trace inputs with ErrTraceUnsupported.
//
// Run, RunBatch and StreamBatch are the only entry points:
//
//	prog, _ := tlr.Assemble(src)
//	res, _ := tlr.Run(ctx, tlr.Request{
//		Prog:  prog,
//		Study: &tlr.StudyConfig{Budget: 100000, Window: 256},
//	})
//	fmt.Println(res.Study.TLR.Speedups[0])
//
// Batch sweeps submit many requests at once and collect ordered results:
//
//	reqs := []tlr.Request{
//		{Workload: "gcc", RTM: &tlr.RTMConfig{Geometry: tlr.Geometry4K}, Budget: 100000},
//		{Workload: "li", Pipeline: &tlr.PipelineConfig{}, Budget: 100000},
//	}
//	res, _ := tlr.RunBatch(ctx, reqs)
//
// All entry points fan out over a shared worker pool, deduplicate
// identical requests in flight, and memoise results in an LRU, so
// configuration sweeps pay for each distinct simulation once; a
// dedicated pool with its own caches is a NewBatcher call away.  The
// context is honoured throughout: cancelling it skips requests that
// have not reached a worker and stops running simulations at their next
// cancellation check, while still delivering exactly one result per
// request.
//
// The same service layer runs behind cmd/tlrserve, an HTTP/JSON server
// that accepts single requests (POST /v1/run), request batches (POST
// /v1/batch, streaming NDJSON results), trace uploads (POST /v1/traces,
// then digest-referenced runs) and hosts a shared concurrent RTM for
// trace-reuse-as-a-service experiments.  Request and Result marshal to
// the server's versioned JSON wire format, so a Go client can drive it
// with encoding/json alone.
//
// The pre-Request facade (MeasureReuse, SimulateRTM, SimulatePipeline,
// MeasureValuePrediction, MeasureBatch) remains as thin deprecated
// wrappers over Run.
//
// See examples/ for complete programs (examples/batchsweep drives the
// batch API) and cmd/tlrexp for the harness that regenerates every
// figure of the paper.
package tlr

import (
	"context"

	"github.com/tracereuse/tlr/internal/asm"
	"github.com/tracereuse/tlr/internal/core"
	"github.com/tracereuse/tlr/internal/dda"
	"github.com/tracereuse/tlr/internal/isa"
	"github.com/tracereuse/tlr/internal/pipeline"
	"github.com/tracereuse/tlr/internal/rtm"
	"github.com/tracereuse/tlr/internal/workload"
)

// Program is an assembled executable image.
type Program = isa.Program

// Assemble translates assembly source (see internal/asm for the syntax)
// into a program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// AssembleNamed is Assemble with a source name used in error messages.
func AssembleNamed(name, src string) (*Program, error) { return asm.AssembleNamed(name, src) }

// Disassemble renders a program as assembly that reassembles identically.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// Workload is one benchmark of the suite.
type Workload = workload.Workload

// Workloads returns the 14-benchmark suite in the paper's figure order
// (FP first, then integer).
func Workloads() []*Workload { return workload.All() }

// WorkloadByName finds a benchmark by its SPEC95 name (e.g. "hydro2d").
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// Latency models the cost of one trace-reuse operation: constant, or
// proportional to the trace's input+output count (paper §4.5).
type Latency = core.Latency

// ConstLatency returns a constant reuse latency of c cycles.
func ConstLatency(c float64) Latency { return core.ConstLatency(c) }

// PropLatency returns a reuse latency of k cycles per input/output value.
func PropLatency(k float64) Latency { return core.PropLatency(k) }

// StudyConfig configures a reuse limit study over one program
// (KindStudy).
type StudyConfig struct {
	// Budget is the number of dynamic instructions to measure.  Inside a
	// Request it may be left zero, in which case the Request's
	// Skip/Budget apply.
	Budget uint64
	// Skip is executed before measurement starts (the paper skipped the
	// first 25 M instructions).
	Skip uint64
	// Window is the instruction window size (0 = infinite; the paper's
	// finite machine uses 256).
	Window int
	// ILRLatencies are the instruction-reuse latencies to evaluate
	// (default: {1}).
	ILRLatencies []float64
	// TLRVariants are the trace-reuse latency models to evaluate
	// (default: {ConstLatency(1)}).
	TLRVariants []Latency
	// Strict replaces the Theorem-1 upper bound with the strict
	// trace-identity test (see core.TLRConfig.Strict).
	Strict bool
	// MaxRunLen caps trace length (0 = unbounded).
	MaxRunLen int
	// ILPWindows, when non-empty, additionally runs the raw
	// dynamic-dependence-analysis base machine (Austin & Sohi's timing
	// model, no reuse) at each of these window sizes (0 = infinite)
	// over the same stream pass, filling StudyResult.DDA.  Like the
	// rest of the Study kind it is trace-driven: backed by a recorded
	// TraceSource it analyses the replayed stream, with results
	// identical to live execution.
	ILPWindows []int
}

// DDAPoint is one window size's base-machine outcome from the
// dynamic-dependence-analysis timing model (StudyConfig.ILPWindows).
type DDAPoint = dda.Point

// StudyResult bundles the instruction-level and trace-level limit-study
// results for one program; all engines saw the same dynamic stream and
// the ILR/TLR pair shared one reusability classification.
type StudyResult struct {
	ILR core.ILRResult
	TLR core.TLRResult
	// DDA holds the base-machine point per StudyConfig.ILPWindows entry
	// (nil when none were requested).
	DDA []DDAPoint `json:",omitempty"`
}

// MeasureReuse runs the paper's limit studies over prog's dynamic stream.
//
// Deprecated: use Run with a Study request, which adds caching,
// coalescing and cancellation:
//
//	tlr.Run(ctx, tlr.Request{Prog: prog, Study: &cfg})
func MeasureReuse(prog *Program, cfg StudyConfig) (StudyResult, error) {
	res, err := Run(context.Background(), Request{Prog: prog, Study: &cfg})
	if err != nil {
		return StudyResult{}, err
	}
	return *res.Study, nil
}

// RTM geometry and simulation types (paper §4.6).
type (
	// Geometry is the RTM shape: sets x PC-ways x traces/PC.
	Geometry = rtm.Geometry
	// RTMConfig configures a realistic RTM simulation (KindRTM).
	RTMConfig = rtm.Config
	// RTMResult summarises one realistic RTM simulation.
	RTMResult = rtm.Result
	// Heuristic selects the dynamic trace-collection policy.
	Heuristic = rtm.Heuristic
)

// The paper's four RTM capacities and three collection heuristics.
var (
	Geometry512  = rtm.Geometry512
	Geometry4K   = rtm.Geometry4K
	Geometry32K  = rtm.Geometry32K
	Geometry256K = rtm.Geometry256K
)

// Collection heuristics (paper §4.6).
const (
	ILRNE  = rtm.ILRNE
	ILREXP = rtm.ILREXP
	IEXP   = rtm.IEXP
)

// SimulateRTM runs prog under a finite Reuse Trace Memory for up to
// budget retired (executed + skipped) instructions, after skipping `skip`
// instructions of warm-up.
//
// Deprecated: use Run with an RTM request:
//
//	tlr.Run(ctx, tlr.Request{Prog: prog, RTM: &cfg, Skip: skip, Budget: budget})
func SimulateRTM(prog *Program, cfg RTMConfig, skip, budget uint64) (RTMResult, error) {
	res, err := Run(context.Background(), Request{Prog: prog, RTM: &cfg, Skip: skip, Budget: budget})
	if err != nil {
		return RTMResult{}, err
	}
	return *res.RTM, nil
}

// PipelineConfig parameterises the execution-driven processor model
// (KindPipeline): a superscalar front end with finite fetch bandwidth
// and window, with the RTM consulted at every fetch (the paper's
// Figure 2).
type PipelineConfig = pipeline.Config

// PipelineResult summarises one execution-driven run; IPC can exceed the
// fetch width because reused instructions retire without being fetched.
type PipelineResult = pipeline.Result

// SimulatePipeline runs prog on the execution-driven pipeline model for
// up to budget retired instructions after `skip` instructions of warm-up.
// Set cfg.RTM to enable trace reuse; nil models the base machine.
//
// Deprecated: use Run with a Pipeline request:
//
//	tlr.Run(ctx, tlr.Request{Prog: prog, Pipeline: &cfg, Skip: skip, Budget: budget})
func SimulatePipeline(prog *Program, cfg PipelineConfig, skip, budget uint64) (PipelineResult, error) {
	res, err := Run(context.Background(), Request{Prog: prog, Pipeline: &cfg, Skip: skip, Budget: budget})
	if err != nil {
		return PipelineResult{}, err
	}
	return *res.Pipeline, nil
}

// VPResult reports a value-prediction limit study (KindVP): predicted
// outputs are available at window entry, validation still executes,
// mispredictions are free (an optimistic bound).  It makes the paper's
// §1 speculation-vs-reuse framing executable.
type VPResult = core.VPResult

// MeasureValuePrediction runs the last-value-prediction limit study;
// only cfg's Skip, Budget and Window are used.
//
// Deprecated: use Run with a VP request:
//
//	tlr.Run(ctx, tlr.Request{Prog: prog, VP: &tlr.VPConfig{Window: w}, Skip: skip, Budget: budget})
func MeasureValuePrediction(prog *Program, cfg StudyConfig) (VPResult, error) {
	res, err := Run(context.Background(), Request{
		Prog:   prog,
		VP:     &VPConfig{Window: cfg.Window},
		Skip:   cfg.Skip,
		Budget: cfg.Budget,
	})
	if err != nil {
		return VPResult{}, err
	}
	return *res.VP, nil
}
