// Command tlrtrace records, inspects, analyses and uploads dynamic
// instruction trace files (the repository's ATOM-equivalent toolflow).
// It is a thin client of the public tlr trace-source API: record wraps
// tlr.Record, analyze replays the file through tlr.Run requests, and
// push uploads it to a tlrserve trace store for digest-referenced
// sweeps.
//
// Usage:
//
//	tlrtrace record -w compress -n 200000 -o compress.trc
//	tlrtrace record -f prog.s -n 100000 -skip 1000 -o prog.trc
//	tlrtrace dump -n 20 compress.trc
//	tlrtrace stats compress.trc
//	tlrtrace stat compress.trc
//	tlrtrace digest compress.trc
//	tlrtrace analyze -window 256 compress.trc
//	tlrtrace ingest -format csv -addr-col 0 -op-col 1 -o mem.trc mem.csv
//	tlrtrace hist mem.trc
//	tlrtrace hist -csv -server http://localhost:8321 sha256:…
//	tlrtrace concat -o whole.trc win1.trc win2.trc
//	tlrtrace push -server http://localhost:8321 compress.trc
//	tlrtrace pull -server http://localhost:8321 -o got.trc sha256:…
//
// `analyze` runs the trace-driven request kinds (study + value
// prediction) directly from the file — no re-simulation.  `stat`
// prints the file's encoding statistics (container version, record
// count, bytes per record in the canonical, delta and at-rest forms),
// so format wins are observable without a benchmark run.  `push`
// prints the content digest the server will answer to, so a follow-up
// run is one POST away:
//
//	{"trace": {"digest": "sha256:…"}, "study": {"budget": 100000}}
//
// `ingest` converts a foreign trace — a CSV address trace with a
// configurable column layout, or the "PC op" text listing format,
// gzip-transparent either way — into a canonical trace file that
// replays, stores and analyses like any recording.  `hist` prints the
// reuse-distance histogram table (exact LRU stack distances, binned per
// operand-location class); its argument is a local trace file, or a
// sha256: digest analysed remotely through -server so the stored trace
// never crosses the wire.
//
// `concat` stitches several recordings into one file (adjacent
// windows of one program concatenate to the stream — and digest — a
// single long recording would have produced) and prints the combined
// content digest like `digest` does.
//
// `pull` is push's inverse: it downloads a stored trace by digest,
// validates it, and verifies the content digest matches the one asked
// for before writing the file — a recording made on one host can be
// fetched and inspected on another.
//
// Both push and pull retry transient failures (connection errors and
// 5xx responses) with doubling backoff; -retries caps the attempts.
// 4xx responses are never retried — they are the server's answer.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/analytics"
	"github.com/tracereuse/tlr/internal/isa"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/tracefile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		record(args)
	case "dump":
		dump(args)
	case "stats":
		statsCmd(args)
	case "stat":
		statCmd(args)
	case "digest":
		digestCmd(args)
	case "analyze":
		analyze(args)
	case "hist":
		hist(args)
	case "ingest":
		ingestCmd(args)
	case "concat":
		concat(args)
	case "push":
		push(args)
	case "pull":
		pull(args)
	default:
		fmt.Fprintf(os.Stderr, "tlrtrace: unknown subcommand %q\n\n", cmd)
		usage()
	}
}

// usage prints the full subcommand synopsis to stderr and exits
// non-zero; it answers both a bare `tlrtrace` and an unknown verb.
func usage() {
	fmt.Fprint(os.Stderr, `usage: tlrtrace <command> [flags] [args]

commands:
  record   record a workload or assembly program into a trace file
  dump     print the first records of a trace file
  stats    print a trace's instruction-mix statistics
  stat     print a trace file's encoding statistics
  digest   print a trace file's content digest
  analyze  run the trace-driven reuse and value-prediction analyses on a file
  hist     print a trace's reuse-distance histogram (file, or sha256: digest with -server)
  ingest   convert a foreign trace (CSV address trace, PC-op text) into a trace file
  concat   stitch several recordings into one trace file
  push     upload a trace file to a tlrserve store
  pull     download a stored trace by digest

run 'tlrtrace <command> -h' for a command's flags.
`)
	os.Exit(2)
}

// concat stitches several recordings into one version-4 trace file:
// each input streams through tlr.Concat (no input is materialised —
// only the growing recording of the combined stream is in memory) and
// the result is saved and digest-printed like `tlrtrace digest`.
func concat(args []string) {
	fs := flag.NewFlagSet("concat", flag.ExitOnError)
	out := fs.String("o", "", "output trace file (required)")
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fail(fmt.Errorf("concat: need at least one input trace file"))
	}
	if *out == "" {
		fail(fmt.Errorf("concat: -o required"))
	}
	srcs := make([]tlr.TraceSource, fs.NArg())
	for i, path := range fs.Args() {
		srcs[i] = tlr.TraceFile(path)
	}
	t, err := tlr.Materialize(tlr.Concat(srcs...))
	if err != nil {
		fail(err)
	}
	if err := t.Save(*out); err != nil {
		fail(err)
	}
	size := t.Size()
	if fi, err := os.Stat(*out); err == nil {
		size = int(fi.Size())
	}
	fmt.Printf("concatenated %d files into %s (%d records, %d bytes)\n",
		fs.NArg(), *out, t.Records(), size)
	fmt.Println(t.Digest())
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wname := fs.String("w", "", "workload name")
	file := fs.String("f", "", "assembly file")
	n := fs.Uint64("n", 200_000, "instructions to record")
	skip := fs.Uint64("skip", 0, "instructions to skip first")
	out := fs.String("o", "", "output trace file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		fail(fmt.Errorf("record: -o required"))
	}

	spec := tlr.RecordSpec{Workload: *wname, Skip: *skip, Budget: *n}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		spec.Source = string(src)
	}
	if (spec.Workload == "") == (spec.Source == "") {
		fail(fmt.Errorf("record: need exactly one of -w or -f"))
	}

	t, err := tlr.Record(context.Background(), spec)
	if err != nil {
		fail(err)
	}
	if err := t.Save(*out); err != nil {
		fail(err)
	}
	size := t.Size()
	if fi, err := os.Stat(*out); err == nil {
		size = int(fi.Size())
	}
	fmt.Printf("recorded %d instructions to %s (%d bytes, %.1f B/instr; %.1f B/instr canonical)\n",
		t.Records(), *out, size, float64(size)/float64(max(t.Records(), 1)),
		float64(t.CanonicalSize())/float64(max(t.Records(), 1)))
	fmt.Printf("digest %s\n", t.Digest())
}

func openTrace(path string) *tracefile.Reader {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	r, err := tracefile.NewReader(f)
	if err != nil {
		fail(err)
	}
	return r
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Uint64("n", 20, "records to print")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("dump: need a trace file"))
	}
	r := openTrace(fs.Arg(0))
	if err := r.ForEach(func(e *trace.Exec) bool {
		fmt.Println(e)
		return r.Records() < *n
	}); err != nil {
		fail(err)
	}
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("stats: need a trace file"))
	}
	r := openTrace(fs.Arg(0))

	var total, branches, taken, memReads, memWrites, sideEff uint64
	classCount := map[isa.Class]uint64{}
	pcs := map[uint64]struct{}{}
	if err := r.ForEach(func(e *trace.Exec) bool {
		total++
		info := isa.InfoOf(e.Op)
		classCount[info.Class]++
		pcs[e.PC] = struct{}{}
		if info.Branch {
			branches++
			if e.Next != e.PC+1 {
				taken++
			}
		}
		if info.MemRead {
			memReads++
		}
		if info.MemWrite {
			memWrites++
		}
		if e.SideEffect {
			sideEff++
		}
		return true
	}); err != nil {
		fail(err)
	}
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(total) }
	fmt.Printf("%d instructions, %d static PCs\n", total, len(pcs))
	names := map[isa.Class]string{
		isa.ClassNop: "nop", isa.ClassIntALU: "int alu", isa.ClassIntMul: "int mul",
		isa.ClassIntDiv: "int div", isa.ClassMem: "memory", isa.ClassBranch: "branch",
		isa.ClassFPAdd: "fp add", isa.ClassFPMul: "fp mul", isa.ClassFPDiv: "fp div",
		isa.ClassFPSqrt: "fp sqrt", isa.ClassSys: "system",
	}
	for cls := isa.ClassNop; cls <= isa.ClassSys; cls++ {
		if n := classCount[cls]; n > 0 {
			fmt.Printf("  %-8s %8d  (%.1f%%)\n", names[cls], n, pct(n))
		}
	}
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)  side-effects %d\n",
		pct(memReads), pct(memWrites), pct(branches), 100*float64(taken)/float64(max(branches, 1)), sideEff)
}

// statCmd prints one trace file's encoding statistics: which container
// version carries it, and what the stream costs per record in each
// form — at rest (the file as stored), canonically (the v1/v2 record
// encoding the digest covers), and in memory (the plane-split v4
// form a trace store holds).
func statCmd(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("stat: need a trace file"))
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	r, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		fail(err)
	}
	t, err := tracefile.Load(bytes.NewReader(data))
	if err != nil {
		fail(err)
	}
	per := func(bytes int) float64 { return float64(bytes) / float64(max(t.Records(), 1)) }
	canon := max(t.CanonicalBytes(), 1)
	fmt.Printf("%s: version %d container, %d records\n", fs.Arg(0), r.Version(), t.Records())
	fmt.Printf("  digest        %s\n", t.Digest())
	fmt.Printf("  file          %9d bytes  %6.2f B/record  (%.2fx canonical)\n",
		len(data), per(len(data)), float64(len(data))/float64(canon))
	fmt.Printf("  canonical     %9d bytes  %6.2f B/record  (v1/v2 record encoding)\n",
		t.CanonicalBytes(), per(t.CanonicalBytes()))
	fmt.Printf("  in-memory v4  %9d bytes  %6.2f B/record  (%.2fx canonical, %d-location dictionary)\n",
		t.Bytes(), per(t.Bytes()), float64(t.Bytes())/float64(canon), t.DictLen())
}

func digestCmd(args []string) {
	fs := flag.NewFlagSet("digest", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("digest: need a trace file"))
	}
	t, err := tlr.OpenTrace(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Println(t.Digest())
}

func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	window := fs.Int("window", 256, "instruction window (0 = infinite)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("analyze: need a trace file"))
	}
	t, err := tlr.OpenTrace(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	budget := t.Records()
	if budget == 0 {
		fail(fmt.Errorf("analyze: empty trace"))
	}

	// Both trace-driven analyses replay the same loaded source; the
	// batch shares it without re-reading the file.
	res, err := tlr.RunBatch(context.Background(), []tlr.Request{
		{ID: "study", Trace: t, Study: &tlr.StudyConfig{Budget: budget, Window: *window}},
		{ID: "vp", Trace: t, VP: &tlr.VPConfig{Window: *window}, Budget: budget},
	})
	if err != nil {
		fail(err)
	}
	ri, rt, rv := res[0].Study.ILR, res[0].Study.TLR, *res[1].VP
	fmt.Printf("%d instructions from file, window=%d\n", ri.Instructions, *window)
	fmt.Printf("  digest            %s\n", t.Digest())
	fmt.Printf("  reusability       %6.1f%%   predictability %6.1f%%\n",
		100*ri.Reusability(), 100*rv.PredictedFraction())
	fmt.Printf("  ILR speed-up      %6.2f\n", ri.Speedups[0])
	fmt.Printf("  TLR speed-up      %6.2f   (avg trace %.1f instr)\n", rt.Speedups[0], rt.Stats.AvgLen())
	fmt.Printf("  VP  speed-up      %6.2f   (last-value limit)\n", rv.Speedup)
}

// ingestCmd converts a foreign trace file — a CSV address trace or the
// "PC op" text format, gzip-transparent — into a canonical trace file,
// the offline twin of tlrserve's POST /v1/ingest.
func ingestCmd(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	format := fs.String("format", "csv", "foreign format: csv or pc")
	addrCol := fs.Int("addr-col", 0, "csv: 0-based address column")
	opCol := fs.Int("op-col", -1, "csv: read/write column (-1 = every row is a read)")
	pcCol := fs.Int("pc-col", -1, "csv: PC column (-1 = synthesize sequential PCs)")
	comma := fs.String("comma", ",", "csv: field separator (one character)")
	header := fs.Bool("header", false, "csv: skip the first non-blank line")
	addrBase := fs.Int("addr-base", 0, "csv: address radix (0 = auto by 0x prefix, 10, 16)")
	lenient := fs.Bool("lenient", false, "skip malformed lines (and count them) instead of failing")
	out := fs.String("o", "", "output trace file (required)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("ingest: need a foreign trace file (or - for stdin)"))
	}
	if *out == "" {
		fail(fmt.Errorf("ingest: -o required"))
	}

	var f tlr.IngestFormat
	switch *format {
	case "csv":
		runes := []rune(*comma)
		if len(runes) != 1 {
			fail(fmt.Errorf("ingest: -comma %q is not a single character", *comma))
		}
		f.CSV = &tlr.CSVFormat{
			AddrCol:  *addrCol,
			OpCol:    *opCol,
			PCCol:    *pcCol,
			Comma:    runes[0],
			Header:   *header,
			AddrBase: *addrBase,
		}
	case "pc", "pctext":
		f.PCText = &tlr.PCTextFormat{}
	default:
		fail(fmt.Errorf("ingest: unknown format %q (want csv or pc)", *format))
	}

	in := os.Stdin
	if fs.Arg(0) != "-" {
		var err error
		if in, err = os.Open(fs.Arg(0)); err != nil {
			fail(err)
		}
		defer in.Close()
	}
	t, st, err := tlr.Ingest(in, f, tlr.IngestOptions{Lenient: *lenient})
	if err != nil {
		fail(err)
	}
	if err := t.Save(*out); err != nil {
		fail(err)
	}
	size := t.Size()
	if fi, err := os.Stat(*out); err == nil {
		size = int(fi.Size())
	}
	fmt.Printf("ingested %d records from %d lines to %s (%d rejected, %d bytes)\n",
		st.Records, st.Lines, *out, st.Rejected, size)
	fmt.Printf("digest %s\n", t.Digest())
}

// hist prints a trace's reuse-distance histogram table — the binned
// exact LRU stack distances per operand-location class.  The argument
// is a local trace file, or a sha256: digest analysed remotely through
// -server's POST /v1/analyze (the stored trace never leaves the
// server).
func hist(args []string) {
	fs := flag.NewFlagSet("hist", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "emit the table as CSV")
	skip := fs.Uint64("skip", 0, "records to skip before analysing")
	budget := fs.Uint64("budget", 0, "records to analyse (0 = the whole trace)")
	server := fs.String("server", "", "tlrserve base URL (required for a sha256: digest argument)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("hist: need a trace file or a sha256: digest"))
	}
	arg := fs.Arg(0)

	var res tlr.Result
	if strings.HasPrefix(arg, "sha256:") {
		if *server == "" {
			fail(fmt.Errorf("hist: a digest argument needs -server"))
		}
		req := tlr.Request{Trace: tlr.TraceRef(arg), Analyze: &tlr.AnalyzeConfig{}, Skip: *skip, Budget: *budget}
		body, err := json.Marshal(req)
		if err != nil {
			fail(err)
		}
		resp, err := http.Post(*server+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			fail(fmt.Errorf("hist: %w", err))
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			fail(fmt.Errorf("hist: %s: %s", resp.Status, msg))
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			fail(err)
		}
	} else {
		t, err := tlr.OpenTrace(arg)
		if err != nil {
			fail(err)
		}
		res, err = tlr.Run(context.Background(),
			tlr.Request{Trace: t, Analyze: &tlr.AnalyzeConfig{}, Skip: *skip, Budget: *budget})
		if err != nil {
			fail(err)
		}
	}
	if res.Err != nil {
		fail(res.Err)
	}
	if res.Analyze == nil {
		fail(fmt.Errorf("hist: response carries no analysis"))
	}
	writeHist(os.Stdout, res.Analyze, *csvOut)
}

// writeHist renders the figure table: one row per operand-location
// class, the exemplar distance bins as columns.
func writeHist(w io.Writer, a *tlr.AnalyzeResult, asCSV bool) {
	classes := []struct {
		name string
		h    analytics.Hist
	}{
		{analytics.ClassLabel(trace.KindIntReg), a.IntReg},
		{analytics.ClassLabel(trace.KindFPReg), a.FPReg},
		{analytics.ClassLabel(trace.KindMem), a.Mem},
	}
	if asCSV {
		fmt.Fprint(w, "class,accesses,cold")
		for i := 0; i < analytics.NumBins; i++ {
			fmt.Fprintf(w, ",%s", analytics.BinLabel(i))
		}
		fmt.Fprintln(w, ",distinct")
		for _, c := range classes {
			fmt.Fprintf(w, "%s,%d,%d", c.name, c.h.Accesses, c.h.Cold)
			for _, b := range c.h.Bins {
				fmt.Fprintf(w, ",%d", b)
			}
			fmt.Fprintf(w, ",%d\n", c.h.Distinct)
		}
		return
	}
	fmt.Fprintf(w, "reuse distances over %d records\n", a.Records)
	fmt.Fprintf(w, "%-8s %9s %9s", "class", "accesses", "cold")
	for i := 0; i < analytics.NumBins; i++ {
		fmt.Fprintf(w, " %9s", analytics.BinLabel(i))
	}
	fmt.Fprintf(w, " %9s\n", "distinct")
	for _, c := range classes {
		fmt.Fprintf(w, "%-8s %9d %9d", c.name, c.h.Accesses, c.h.Cold)
		for _, b := range c.h.Bins {
			fmt.Fprintf(w, " %9d", b)
		}
		fmt.Fprintf(w, " %9d\n", c.h.Distinct)
	}
}

func push(args []string) {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8321", "tlrserve base URL")
	retries := fs.Int("retries", 3, "attempts on connection errors and 5xx responses")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("push: need a trace file"))
	}
	// The file is re-opened per attempt: a retried POST must send the
	// whole body again, not whatever a half-consumed reader has left.
	resp, err := doRetry(*retries, 200*time.Millisecond, func() (*http.Response, error) {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		return http.Post(*server+"/v1/traces", "application/octet-stream", f)
	})
	if err != nil {
		fail(fmt.Errorf("push: %w", err))
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("push: %s: %s", resp.Status, body))
	}
	fmt.Print(string(body))
}

// pull downloads a trace from a tlrserve store by content digest,
// validates the received file with the same decoder uploads go
// through, verifies its digest is the one asked for, and writes the
// raw bytes to disk.
func pull(args []string) {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8321", "tlrserve base URL")
	out := fs.String("o", "", "output trace file (required)")
	maxMB := fs.Int64("max-mb", 1024, "largest accepted download in MiB")
	retries := fs.Int("retries", 3, "attempts on connection errors and 5xx responses")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("pull: need a trace digest (like sha256:…)"))
	}
	if *out == "" {
		fail(fmt.Errorf("pull: -o required"))
	}
	digest := fs.Arg(0)
	resp, err := doRetry(*retries, 200*time.Millisecond, func() (*http.Response, error) {
		return http.Get(*server + "/v1/traces/" + digest)
	})
	if err != nil {
		fail(fmt.Errorf("pull: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fail(fmt.Errorf("pull: %s: %s", resp.Status, body))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, *maxMB<<20+1))
	if err != nil {
		fail(err)
	}
	if int64(len(data)) > *maxMB<<20 {
		fail(fmt.Errorf("pull: response exceeds %d MiB (raise -max-mb)", *maxMB))
	}
	t, err := tlr.ReadTrace(bytes.NewReader(data))
	if err != nil {
		fail(fmt.Errorf("pull: invalid trace file from server: %w", err))
	}
	if t.Digest() != digest {
		fail(fmt.Errorf("pull: server returned digest %s, asked for %s", t.Digest(), digest))
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("pulled %d records to %s (%d bytes, %.1f B/instr)\n",
		t.Records(), *out, len(data), float64(len(data))/float64(max(t.Records(), 1)))
	fmt.Printf("digest %s\n", t.Digest())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tlrtrace:", err)
	os.Exit(1)
}
