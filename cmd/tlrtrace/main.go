// Command tlrtrace records, inspects and analyses dynamic instruction
// trace files (the repository's ATOM-equivalent toolflow).
//
// Usage:
//
//	tlrtrace record -w compress -n 200000 -o compress.trc
//	tlrtrace record -f prog.s -n 100000 -o prog.trc
//	tlrtrace dump -n 20 compress.trc
//	tlrtrace stats compress.trc
//	tlrtrace analyze -window 256 compress.trc
//
// `analyze` runs the reuse limit studies directly from the file — no
// re-simulation — demonstrating that every engine is stream-agnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/core"
	"github.com/tracereuse/tlr/internal/cpu"
	"github.com/tracereuse/tlr/internal/isa"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/tracefile"
)

func main() {
	if len(os.Args) < 2 {
		fail(fmt.Errorf("usage: tlrtrace record|dump|stats|analyze ..."))
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		record(args)
	case "dump":
		dump(args)
	case "stats":
		statsCmd(args)
	case "analyze":
		analyze(args)
	default:
		fail(fmt.Errorf("unknown subcommand %q", cmd))
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wname := fs.String("w", "", "workload name")
	file := fs.String("f", "", "assembly file")
	n := fs.Uint64("n", 200_000, "instructions to record")
	skip := fs.Uint64("skip", 0, "instructions to skip first")
	out := fs.String("o", "", "output trace file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		fail(fmt.Errorf("record: -o required"))
	}

	var prog *isa.Program
	switch {
	case *wname != "":
		w, ok := tlr.WorkloadByName(*wname)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *wname))
		}
		p, err := w.Program()
		if err != nil {
			fail(err)
		}
		prog = p
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := tlr.AssembleNamed(*file, string(src))
		if err != nil {
			fail(err)
		}
		prog = p
	default:
		fail(fmt.Errorf("record: need -w or -f"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tw, err := tracefile.NewWriter(f)
	if err != nil {
		fail(err)
	}
	c := cpu.New(prog)
	if *skip > 0 {
		if _, err := c.Run(*skip, nil); err != nil {
			fail(err)
		}
	}
	var werr error
	ran, err := c.Run(*n, func(e *trace.Exec) {
		if werr == nil {
			werr = tw.Write(e)
		}
	})
	if err != nil {
		fail(err)
	}
	if werr != nil {
		fail(werr)
	}
	if err := tw.Flush(); err != nil {
		fail(err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %d instructions to %s (%d bytes, %.1f B/instr)\n",
		ran, *out, info.Size(), float64(info.Size())/float64(ran))
}

func openTrace(path string) *tracefile.Reader {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	r, err := tracefile.NewReader(f)
	if err != nil {
		fail(err)
	}
	return r
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Uint64("n", 20, "records to print")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("dump: need a trace file"))
	}
	r := openTrace(fs.Arg(0))
	if err := r.ForEach(func(e *trace.Exec) bool {
		fmt.Println(e)
		return r.Records() < *n
	}); err != nil {
		fail(err)
	}
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("stats: need a trace file"))
	}
	r := openTrace(fs.Arg(0))

	var total, branches, taken, memReads, memWrites, sideEff uint64
	classCount := map[isa.Class]uint64{}
	pcs := map[uint64]struct{}{}
	if err := r.ForEach(func(e *trace.Exec) bool {
		total++
		info := isa.InfoOf(e.Op)
		classCount[info.Class]++
		pcs[e.PC] = struct{}{}
		if info.Branch {
			branches++
			if e.Next != e.PC+1 {
				taken++
			}
		}
		if info.MemRead {
			memReads++
		}
		if info.MemWrite {
			memWrites++
		}
		if e.SideEffect {
			sideEff++
		}
		return true
	}); err != nil {
		fail(err)
	}
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(total) }
	fmt.Printf("%d instructions, %d static PCs\n", total, len(pcs))
	names := map[isa.Class]string{
		isa.ClassNop: "nop", isa.ClassIntALU: "int alu", isa.ClassIntMul: "int mul",
		isa.ClassIntDiv: "int div", isa.ClassMem: "memory", isa.ClassBranch: "branch",
		isa.ClassFPAdd: "fp add", isa.ClassFPMul: "fp mul", isa.ClassFPDiv: "fp div",
		isa.ClassFPSqrt: "fp sqrt", isa.ClassSys: "system",
	}
	for cls := isa.ClassNop; cls <= isa.ClassSys; cls++ {
		if n := classCount[cls]; n > 0 {
			fmt.Printf("  %-8s %8d  (%.1f%%)\n", names[cls], n, pct(n))
		}
	}
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)  side-effects %d\n",
		pct(memReads), pct(memWrites), pct(branches), 100*float64(taken)/float64(max(branches, 1)), sideEff)
}

func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	window := fs.Int("window", 256, "instruction window (0 = infinite)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("analyze: need a trace file"))
	}
	r := openTrace(fs.Arg(0))

	hist := core.NewHistory()
	ilr := core.NewILRStudy(core.ILRConfig{Window: *window, Latencies: []float64{1}})
	tlrS := core.NewTLRStudy(core.TLRConfig{Window: *window, Variants: []core.Latency{core.ConstLatency(1)}})
	vp := core.NewVPStudy(core.VPConfig{Window: *window})
	if err := r.ForEach(func(e *trace.Exec) bool {
		reusable := hist.Observe(e)
		ilr.ConsumeClassified(e, reusable)
		tlrS.ConsumeClassified(e, reusable)
		vp.Consume(e)
		return true
	}); err != nil {
		fail(err)
	}
	ilr.Finish()
	tlrS.Finish()
	vp.Finish()
	ri, rt, rv := ilr.Result(), tlrS.Result(), vp.Result()
	fmt.Printf("%d instructions from file, window=%d\n", ri.Instructions, *window)
	fmt.Printf("  reusability       %6.1f%%   predictability %6.1f%%\n",
		100*ri.Reusability(), 100*rv.PredictedFraction())
	fmt.Printf("  ILR speed-up      %6.2f\n", ri.Speedups[0])
	fmt.Printf("  TLR speed-up      %6.2f   (avg trace %.1f instr)\n", rt.Speedups[0], rt.Stats.AvgLen())
	fmt.Printf("  VP  speed-up      %6.2f   (last-value limit)\n", rv.Speedup)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tlrtrace:", err)
	os.Exit(1)
}
