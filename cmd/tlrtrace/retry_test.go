package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first n requests with the given status (0 =
// refuse at the transport level by hijacking and dropping the
// connection), then answers 200 with the request body echoed back.
func flakyServer(t *testing.T, failFirst int, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= failFirst {
			if status == 0 {
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("server does not support hijacking")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Fatal(err)
				}
				conn.Close()
				return
			}
			http.Error(w, "not yet", status)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func postBody(ts *httptest.Server, body string) func() (*http.Response, error) {
	return func() (*http.Response, error) {
		return http.Post(ts.URL, "text/plain", strings.NewReader(body))
	}
}

func TestDoRetryRecoversFrom5xx(t *testing.T) {
	ts, calls := flakyServer(t, 2, http.StatusServiceUnavailable)
	resp, err := doRetry(4, 0, postBody(ts, "payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "payload" {
		t.Fatalf("body = %q, want full payload on the retried attempt", body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestDoRetryRecoversFromConnectionError(t *testing.T) {
	ts, calls := flakyServer(t, 1, 0)
	resp, err := doRetry(3, 0, postBody(ts, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestDoRetryGivesUpAfterAttempts(t *testing.T) {
	ts, calls := flakyServer(t, 100, http.StatusInternalServerError)
	_, err := doRetry(3, 0, postBody(ts, "x"))
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestDoRetryRetries429AndHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		io.Copy(w, r.Body)
	}))
	t.Cleanup(ts.Close)
	start := time.Now()
	resp, err := doRetry(3, 0, postBody(ts, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (429 retried)", got)
	}
	if el := time.Since(start); el < 900*time.Millisecond {
		t.Fatalf("retried after %v, want the server's Retry-After (1s) honored", el)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	if d := retryAfter(mk("")); d != 0 {
		t.Fatalf("absent header = %v, want 0", d)
	}
	if d := retryAfter(mk("2")); d != 2*time.Second {
		t.Fatalf("seconds form = %v, want 2s", d)
	}
	if d := retryAfter(mk("3600")); d != retryAfterMax {
		t.Fatalf("huge value = %v, want capped at %v", d, retryAfterMax)
	}
	if d := retryAfter(mk("soon")); d != 0 {
		t.Fatalf("garbage = %v, want 0", d)
	}
	if d := retryAfter(mk("-5")); d != 0 {
		t.Fatalf("negative seconds = %v, want 0", d)
	}
	date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfter(mk(date)); d <= 0 || d > 10*time.Second {
		t.Fatalf("future date = %v, want within (0, 10s]", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := retryAfter(mk(past)); d != 0 {
		t.Fatalf("past date = %v, want 0", d)
	}
}

func TestDoRetryDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such digest", http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)
	resp, err := doRetry(5, 0, func() (*http.Response, error) { return http.Get(ts.URL) })
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want the 404 passed through", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (4xx is final)", got)
	}
}
