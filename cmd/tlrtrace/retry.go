package main

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// doRetry runs op up to attempts times, retrying the transient failure
// classes a network client actually sees: connection errors (the server
// is restarting, the LB dropped us) and 5xx responses.  Anything else —
// a 2xx, a 3xx, a 4xx — is the server's considered answer and is
// returned to the caller as-is.
//
// op must produce a fresh request each call (re-open files, re-seek
// readers); doRetry drains and closes the bodies of responses it
// retries so connections can be reused.  Backoff doubles per attempt.
func doRetry(attempts int, backoff time.Duration, op func() (*http.Response, error)) (*http.Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := op()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode < 500 {
			return resp, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		lastErr = fmt.Errorf("%s: %s", resp.Status, body)
	}
	return nil, fmt.Errorf("after %d attempts: %w", attempts, lastErr)
}
