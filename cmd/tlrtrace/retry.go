package main

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// doRetry runs op up to attempts times, retrying the transient failure
// classes a network client actually sees: connection errors (the server
// is restarting, the LB dropped us), 5xx responses, and 429 (the server
// is shedding load and wants us back later).  Anything else — a 2xx, a
// 3xx, a non-429 4xx — is the server's considered answer and is
// returned to the caller as-is.
//
// A Retry-After header on a retried response overrides the backoff for
// the next attempt: when the server says how long it needs, waiting
// exactly that long beats guessing.  op must produce a fresh request
// each call (re-open files, re-seek readers); doRetry drains and closes
// the bodies of responses it retries so connections can be reused.
// Backoff doubles per attempt; the final error reports the attempt
// count and the last failure.
func doRetry(attempts int, backoff time.Duration, op func() (*http.Response, error)) (*http.Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	var wait time.Duration // server-directed wait, overriding backoff
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if wait <= 0 {
				wait = backoff
				backoff *= 2
			}
			time.Sleep(wait)
			wait = 0
		}
		resp, err := op()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode < 500 {
			return resp, nil
		}
		wait = retryAfter(resp.Header)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		lastErr = fmt.Errorf("%s: %s", resp.Status, body)
	}
	return nil, fmt.Errorf("after %d attempts: %w", attempts, lastErr)
}

// retryAfterMax caps a server-directed wait so a confused server cannot
// park the client indefinitely.
const retryAfterMax = 30 * time.Second

// retryAfter parses a Retry-After header — integer seconds or an HTTP
// date, the two forms the spec allows.  0 means absent, unparseable, or
// already in the past.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		d = time.Until(t)
	}
	if d < 0 {
		return 0
	}
	return min(d, retryAfterMax)
}
