package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The test binary doubles as the tlrtrace binary: with TLRTRACE_MAIN=1
// in the environment it runs main() instead of the tests, so subcommand
// behaviour — exit codes, stderr, file outputs — is exercised through a
// real process boundary without a separate build step.

func TestMain(m *testing.M) {
	if os.Getenv("TLRTRACE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// run re-executes the test binary as tlrtrace with the given arguments
// and returns stdout, stderr and the exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TLRTRACE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestUsageSynopsis(t *testing.T) {
	verbs := []string{"record", "dump", "stats", "stat", "digest",
		"analyze", "hist", "ingest", "concat", "push", "pull"}

	// No arguments at all: the full synopsis on stderr, non-zero exit.
	stdout, stderr, code := run(t)
	if code == 0 {
		t.Errorf("no-args exit code 0, want non-zero")
	}
	if stdout != "" {
		t.Errorf("no-args wrote to stdout: %q", stdout)
	}
	for _, v := range verbs {
		if !strings.Contains(stderr, "\n  "+v+" ") {
			t.Errorf("usage synopsis missing %q:\n%s", v, stderr)
		}
	}

	// An unknown subcommand names itself and then shows the same synopsis.
	_, stderr, code = run(t, "frobnicate")
	if code == 0 {
		t.Errorf("unknown subcommand exit code 0, want non-zero")
	}
	if !strings.Contains(stderr, `unknown subcommand "frobnicate"`) ||
		!strings.Contains(stderr, "usage: tlrtrace") {
		t.Errorf("unknown-subcommand stderr:\n%s", stderr)
	}
}

func TestIngestHistGolden(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "foreign.trc")

	stdout, stderr, code := run(t, "ingest", "-format", "csv",
		"-addr-col", "0", "-op-col", "1", "-header",
		"-o", trc, filepath.Join("testdata", "foreign.csv"))
	if code != 0 {
		t.Fatalf("ingest exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ingested 200 records from 201 lines") ||
		!strings.Contains(stdout, "digest sha256:") {
		t.Fatalf("ingest output: %q", stdout)
	}

	// The CSV histogram table must match the committed golden byte for
	// byte — the same file the CI end-to-end smoke diffs against after
	// pushing the fixture through a live tlrserve.
	stdout, stderr, code = run(t, "hist", "-csv", trc)
	if code != 0 {
		t.Fatalf("hist exit %d: %s", code, stderr)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "foreign_hist.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(golden) {
		t.Errorf("hist table diverged from golden:\n got:\n%s want:\n%s", stdout, golden)
	}

	// The text rendering carries the same numbers.
	stdout, _, code = run(t, "hist", trc)
	if code != 0 || !strings.Contains(stdout, "reuse distances over 200 records") {
		t.Errorf("text hist (exit %d): %q", code, stdout)
	}

	// A digest argument without -server is a usage error, not a hang.
	_, stderr, code = run(t, "hist", "sha256:deadbeef")
	if code == 0 || !strings.Contains(stderr, "-server") {
		t.Errorf("digest without -server (exit %d): %s", code, stderr)
	}

	// Strict mode fails on the header line when -header is absent.
	_, stderr, code = run(t, "ingest", "-format", "csv", "-addr-col", "0",
		"-op-col", "1", "-o", filepath.Join(dir, "bad.trc"),
		filepath.Join("testdata", "foreign.csv"))
	if code == 0 || !strings.Contains(stderr, "line 1") {
		t.Errorf("strict header ingest (exit %d): %s", code, stderr)
	}
}
