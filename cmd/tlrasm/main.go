// Command tlrasm assembles, disassembles, inspects and runs programs in
// the simulator's assembly language.
//
// Usage:
//
//	tlrasm prog.s               # assemble and report
//	tlrasm -o prog.img prog.s   # assemble and save a binary program image
//	tlrasm -d prog.img          # images load wherever sources do
//	tlrasm -sym prog.s          # print the symbol table
//	tlrasm -run -max 100000 prog.s   # execute (OUT prints to stdout)
//	tlrasm -w compress -d       # operate on a bundled workload instead
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/asm"
	"github.com/tracereuse/tlr/internal/cpu"
	"github.com/tracereuse/tlr/internal/isa"
)

func main() {
	var (
		disasm = flag.Bool("d", false, "print the disassembly")
		sym    = flag.Bool("sym", false, "print the symbol table")
		run    = flag.Bool("run", false, "execute the program")
		maxN   = flag.Uint64("max", 1_000_000, "max instructions when running")
		wname  = flag.String("w", "", "use a bundled workload instead of a file")
		out    = flag.String("o", "", "write a binary program image to this path")
	)
	flag.Parse()

	var (
		prog *isa.Program
		name string
		err  error
	)
	switch {
	case *wname != "":
		w, ok := tlr.WorkloadByName(*wname)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *wname))
		}
		prog, err = w.Program()
		name = w.Name
	case flag.NArg() == 1:
		name = flag.Arg(0)
		var src []byte
		src, err = os.ReadFile(name)
		if err == nil {
			if bytes.HasPrefix(src, isa.ImageMagic[:]) {
				prog, err = isa.ReadImage(bytes.NewReader(src))
			} else {
				prog, err = asm.AssembleNamed(name, string(src))
			}
		}
	default:
		fail(fmt.Errorf("need exactly one source file or -w workload"))
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s: %d instructions, %d data words, entry %d\n",
		name, len(prog.Insts), len(prog.Data), prog.Entry)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := isa.WriteImage(f, prog); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}

	if *sym {
		for _, s := range asm.Symbols(prog) {
			fmt.Println(s)
		}
	}
	if *disasm {
		fmt.Print(asm.Disassemble(prog))
	}
	if *run {
		c := cpu.New(prog, cpu.WithOutput(func(v uint64) {
			fmt.Printf("out: %d (%#x)\n", v, v)
		}))
		n, err := c.Run(*maxN, nil)
		if err != nil {
			fail(err)
		}
		status := "budget exhausted"
		if c.Halted() {
			status = "halted"
		}
		fmt.Printf("executed %d instructions (%s), final PC %d\n", n, status, c.PC())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tlrasm:", err)
	os.Exit(1)
}
