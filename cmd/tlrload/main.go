// Command tlrload drives a running tlrserve with a sustained mixed
// workload and reports what both sides saw: client-side throughput and
// per-kind latency percentiles, and server-side goroutine/heap
// ceilings and 5xx counts scraped from /metrics during the run.
//
//	tlrload -server http://localhost:8080 -duration 30s -workers 8
//
// The report is JSON on stdout (or -report FILE).  Gate flags turn the
// run into a pass/fail check for CI: any violated gate is printed and
// the process exits 1.
//
//	tlrload -server ... -duration 30s \
//	    -gate-p99-ms 2000 -gate-5xx 0 -gate-goroutines 500 -gate-heap-growth 4
//
// The default mode is closed-loop (each worker issues its next request
// when the previous answer lands); -rate N switches to open-loop at N
// requests/second of offered load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/tracereuse/tlr/internal/loadgen"
)

func main() {
	var (
		server   = flag.String("server", "http://localhost:8080", "base URL of the tlrserve to drive")
		duration = flag.Duration("duration", 30*time.Second, "measurement window")
		workers  = flag.Int("workers", 4, "concurrent client loops")
		rate     = flag.Float64("rate", 0, "open-loop offered load in requests/sec (0 = closed loop)")
		mixFlag  = flag.String("mix", "run=6,replay=2,analyze=1,upload=1", "request mix weights")
		distinct = flag.Int("distinct", 8, "distinct request variants per kind")
		workload = flag.String("workload", "li", "built-in benchmark backing the traffic")
		budget   = flag.Uint64("budget", 20000, "base instruction budget per simulation")
		seed     = flag.Int64("seed", 1, "RNG seed for the request sequence")
		report   = flag.String("report", "", "write the JSON report here instead of stdout")
		verbose  = flag.Bool("v", false, "log per-request failures and progress")

		gateP99     = flag.Float64("gate-p99-ms", 0, "fail if any kind's p99 exceeds this many ms (0 = off)")
		gateKind    = flag.String("gate-kind", "", "restrict -gate-p99-ms to one kind (run, replay, analyze, upload)")
		gateErrors  = flag.Uint64("gate-errors", 0, "fail if client errors exceed this count")
		gate5xx     = flag.Float64("gate-5xx", 0, "fail if the server's 5xx count exceeds this")
		gateGor     = flag.Float64("gate-goroutines", 0, "fail if the goroutine ceiling exceeds this (0 = off)")
		gateHeap    = flag.Float64("gate-heap-growth", 0, "fail if heap-in-use grew more than this factor over the run (0 = off)")
		gatesActive = false
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatalf("tlrload: %v", err)
	}

	cfg := loadgen.Config{
		Server:   strings.TrimRight(*server, "/"),
		Duration: *duration,
		Workers:  *workers,
		Rate:     *rate,
		Mix:      mix,
		Distinct: *distinct,
		Workload: *workload,
		Budget:   *budget,
		Seed:     *seed,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("tlrload: %v", err)
	}

	out := os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			log.Fatalf("tlrload: %v", err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		log.Fatalf("tlrload: %v", err)
	}

	gates := loadgen.Gates{
		MaxP99Ms:      *gateP99,
		Kind:          *gateKind,
		MaxErrors:     *gateErrors,
		Max5xx:        *gate5xx,
		MaxGoroutines: *gateGor,
		MaxHeapGrowth: *gateHeap,
	}
	flag.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "gate-") {
			gatesActive = true
		}
	})
	if !gatesActive {
		return
	}
	if bad := gates.Check(rep); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "tlrload: GATE FAILED: %s\n", b)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tlrload: all gates passed (%d requests, %.1f req/s, worst p99 %.1fms)\n",
		rep.Requests, rep.ThroughputRPS, rep.MaxP99Ms())
}

// parseMix reads "run=6,replay=2,analyze=1,upload=1"; omitted kinds
// get weight zero.
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch name {
		case "run":
			m.Run = w
		case "replay":
			m.Replay = w
		case "analyze":
			m.Analyze = w
		case "upload":
			m.Upload = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (want run, replay, analyze, upload)", name)
		}
	}
	if m.Run+m.Replay+m.Analyze+m.Upload == 0 {
		return m, fmt.Errorf("mix %q has no positive weights", s)
	}
	return m, nil
}
