package main

import (
	"testing"

	"github.com/tracereuse/tlr/internal/loadgen"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("run=6,replay=2,analyze=1,upload=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (loadgen.Mix{Run: 6, Replay: 2, Analyze: 1, Upload: 1}) {
		t.Errorf("mix = %+v", m)
	}

	m, err = parseMix("run=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (loadgen.Mix{Run: 1}) {
		t.Errorf("mix = %+v", m)
	}

	for _, bad := range []string{"", "run", "run=x", "run=-1", "walk=3", "run=0,upload=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}
