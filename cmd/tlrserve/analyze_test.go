package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/tracereuse/tlr"
)

// The foreign-trace workflow over HTTP: POST /v1/ingest converts a CSV
// address trace into the store, POST /v1/analyze histograms it by
// digest, and /v1/stats accounts for both.

func ingestBody(rows int) string {
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		op := "r"
		if i%4 == 3 {
			op = "w"
		}
		fmt.Fprintf(&sb, "0x%x,%s\n", 0x1000+(i%32)*8, op)
	}
	return sb.String()
}

func TestIngestAnalyzeAndStats(t *testing.T) {
	ts := testServer(t)
	const rows = 1200

	resp := post(t, ts, "/v1/ingest?format=csv&addr-col=0&op-col=1", ingestBody(rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var up struct {
		Digest   string `json:"digest"`
		Records  uint64 `json:"records"`
		Lines    uint64 `json:"lines"`
		Rejected uint64 `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Records != rows || up.Rejected != 0 || !strings.HasPrefix(up.Digest, "sha256:") {
		t.Fatalf("ingest response: %+v", up)
	}

	// Analyze by digest with the config implied; run it twice so the
	// second answer comes from cache.
	body := fmt.Sprintf(`{"trace": {"digest": %q}}`, up.Digest)
	var first tlr.Result
	for i := 0; i < 2; i++ {
		resp := post(t, ts, "/v1/analyze", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze status %d", resp.StatusCode)
		}
		var res tlr.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || res.Kind != tlr.KindAnalyze || res.Analyze == nil {
			t.Fatalf("analyze result: %+v", res)
		}
		if res.Analyze.Records != rows || res.Analyze.Mem.Distinct != 32 {
			t.Fatalf("histogram: %+v", *res.Analyze)
		}
		if i == 0 {
			first = res
		} else if !res.Cached || *res.Analyze != *first.Analyze {
			t.Fatalf("second analyze not cached: %+v", res)
		}
	}

	// A non-analyze body on /v1/analyze is a 400.
	resp = post(t, ts, "/v1/analyze", `{"workload": "li", "study": {"budget": 100}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-analyze kind accepted: status %d", resp.StatusCode)
	}

	// /v1/stats carries the analytics section with the ingest and
	// analyze accounting.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Analytics struct {
			AnalyzeRuns     uint64 `json:"analyzeRuns"`
			AnalyzeHits     uint64 `json:"analyzeHits"`
			IngestedTraces  uint64 `json:"ingestedTraces"`
			IngestedRecords uint64 `json:"ingestedRecords"`
			IngestRejects   uint64 `json:"ingestRejects"`
		} `json:"analytics"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	a := stats.Analytics
	if a.AnalyzeRuns != 1 || a.AnalyzeHits != 1 {
		t.Errorf("analyze counters: %+v", a)
	}
	if a.IngestedTraces != 1 || a.IngestedRecords != rows || a.IngestRejects != 0 {
		t.Errorf("ingest counters: %+v", a)
	}
}

func TestIngestFormatsAndErrors(t *testing.T) {
	ts := testServer(t)

	// PC-op text format.
	pcBody := "0x100 ld 0x2000 -> r1\n0x101 add r1 r1 -> r2\n0x102 st r2 -> 0x2000\n"
	resp := post(t, ts, "/v1/ingest?format=pc", pcBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pc ingest status %d", resp.StatusCode)
	}

	// Gzip body, lenient mode counting a malformed row.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("0x10,r\nbogus,r\n0x20,w\n"))
	zw.Close()
	hresp, err := http.Post(ts.URL+"/v1/ingest?format=csv&op-col=1&lenient=1", "text/csv", &gz)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var up struct {
		Records  uint64 `json:"records"`
		Rejected uint64 `json:"rejected"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Records != 2 || up.Rejected != 1 {
		t.Fatalf("lenient gzip ingest: %+v", up)
	}

	// Errors: malformed line in strict mode carries its line number;
	// unknown formats and bad layout parameters are 400s.
	resp = post(t, ts, "/v1/ingest?format=csv&op-col=1", "0x10,r\nbogus,r\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict malformed ingest: status %d", resp.StatusCode)
	}
	for _, path := range []string{
		"/v1/ingest?format=elf",
		"/v1/ingest?format=csv&addr-col=x",
		"/v1/ingest?format=csv&comma=%3B%3B",
	} {
		if resp := post(t, ts, path, "0x10\n"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}
