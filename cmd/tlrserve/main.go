// Command tlrserve serves the simulation API over HTTP/JSON: the public
// tlr Request/Run facade (worker pool, result cache, in-flight
// coalescing) behind POST /v1/run and POST /v1/batch, and a shared
// concurrent (sharded) Reuse Trace Memory behind /v1/rtm for
// trace-reuse-as-a-service experiments.
//
// Usage:
//
//	tlrserve [-addr :8321] [-workers N] [-cache N] [-rtm-sets 128] [-rtm-ways 4] [-rtm-traces 8]
//
// # Run API
//
// POST /v1/run accepts one request in the tlr wire format — a program
// (a built-in "workload" or assembly "source") plus exactly one
// configuration naming the simulation kind ("study", "rtm", "pipeline"
// or "vp") — and answers with one result:
//
//	{"workload": "gcc", "rtm": {"geometry": {"sets": 128, "pcWays": 4,
//	 "tracesPerPC": 8}, "heuristic": "ILR EXP"},
//	 "skip": 1000, "budget": 100000}
//
//	{"workload": "li", "pipeline": {"rtm": {"geometry": {"sets": 128,
//	 "pcWays": 4, "tracesPerPC": 8}}}, "budget": 100000}
//
// # Batch API
//
// POST /v1/batch accepts {"jobs": [...]} of the same request objects.
// The response streams one JSON result per line (NDJSON) as each
// simulation finishes; every line carries the job's batch index, so
// clients can reassemble deterministic order.  Identical requests —
// within a batch or across batches — are simulated once and answered
// from cache, and closing the connection cancels the batch, stopping
// in-flight simulations at their next cancellation check.
//
// # Shared RTM
//
// POST /v1/rtm/insert stores a trace summary in the server-wide sharded
// RTM; POST /v1/rtm/lookup runs the reuse test against caller-supplied
// state.  Locations are {"kind": "r"|"f"|"m", "index": N}.  The RTM and
// the trace history behind it are lock-striped, so concurrent requests
// proceed in parallel — many goroutines, one engine instance.
//
// GET /healthz reports liveness; GET /v1/stats reports service, RTM and
// history counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/core"
	"github.com/tracereuse/tlr/internal/rtm"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result cache capacity in jobs (0 = default)")
	rtmSets := flag.Int("rtm-sets", 128, "shared RTM sets (power of two)")
	rtmWays := flag.Int("rtm-ways", 4, "shared RTM PC ways per set")
	rtmTraces := flag.Int("rtm-traces", 8, "shared RTM traces per PC")
	rtmShards := flag.Int("rtm-shards", 0, "shared RTM lock stripes (0 = auto)")
	flag.Parse()

	geom := rtm.Geometry{Sets: *rtmSets, PCWays: *rtmWays, TracesPerPC: *rtmTraces}
	if geom.Sets <= 0 || geom.Sets&(geom.Sets-1) != 0 {
		log.Fatalf("tlrserve: -rtm-sets must be a positive power of two, got %d", geom.Sets)
	}
	if geom.PCWays < 1 || geom.TracesPerPC < 1 {
		log.Fatalf("tlrserve: -rtm-ways and -rtm-traces must be >= 1, got %d and %d",
			geom.PCWays, geom.TracesPerPC)
	}
	srv := newServer(tlr.BatchOptions{Workers: *workers, CacheSize: *cache}, geom, *rtmShards)
	log.Printf("tlrserve: listening on %s (shared RTM %v, %d stripes)",
		*addr, geom, srv.shared.Shards())
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

type server struct {
	batcher *tlr.Batcher
	shared  *rtm.Sharded
	hist    *core.ShardedTraceHistory
}

func newServer(opt tlr.BatchOptions, geom rtm.Geometry, shards int) *server {
	return &server{
		batcher: tlr.NewBatcher(opt),
		shared:  rtm.NewSharded(geom, 1, shards),
		hist:    core.NewShardedTraceHistory(0),
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/rtm/insert", s.handleRTMInsert)
	mux.HandleFunc("POST /v1/rtm/lookup", s.handleRTMLookup)
	return mux
}

// --- run and batch APIs ---

// handleRun executes one request of any kind through the public facade.
// Malformed requests are a 400; a simulation failure is a 200 whose
// result carries the error, mirroring the library's Run contract.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req tlr.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.batcher.Run(r.Context(), req)
	if err != nil && res.Kind == "" {
		// Never submitted: the request failed validation.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Jobs []tlr.Request `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	reqs := req.Jobs
	if len(reqs) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	// The request context cancels the batch on client disconnect:
	// undispatched jobs are skipped and in-flight simulations stop at
	// their next cancellation check.
	stream, err := s.batcher.StreamBatch(r.Context(), reqs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range stream {
		if err := enc.Encode(&res); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// --- shared RTM API ---

type jsonLoc struct {
	Kind  string `json:"kind"` // "r", "f", "m"
	Index uint64 `json:"index"`
}

func (l jsonLoc) loc() (trace.Loc, error) {
	switch l.Kind {
	case "r":
		return trace.IntReg(uint8(l.Index)), nil
	case "f":
		return trace.FPReg(uint8(l.Index)), nil
	case "m":
		return trace.Mem(l.Index), nil
	default:
		return 0, fmt.Errorf("unknown location kind %q", l.Kind)
	}
}

func toJSONLoc(l trace.Loc) jsonLoc {
	switch l.Kind() {
	case trace.KindIntReg:
		return jsonLoc{Kind: "r", Index: l.Index()}
	case trace.KindFPReg:
		return jsonLoc{Kind: "f", Index: l.Index()}
	default:
		return jsonLoc{Kind: "m", Index: l.Index()}
	}
}

type jsonRef struct {
	Loc jsonLoc `json:"loc"`
	Val uint64  `json:"val"`
}

type jsonSummary struct {
	StartPC uint64    `json:"startPC"`
	Next    uint64    `json:"next"`
	Len     int       `json:"len"`
	Ins     []jsonRef `json:"ins"`
	Outs    []jsonRef `json:"outs"`
}

func (js jsonSummary) summary() (trace.Summary, error) {
	s := trace.Summary{StartPC: js.StartPC, Next: js.Next, Len: js.Len}
	for _, r := range js.Ins {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Ins = append(s.Ins, trace.Ref{Loc: l, Val: r.Val})
	}
	for _, r := range js.Outs {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Outs = append(s.Outs, trace.Ref{Loc: l, Val: r.Val})
	}
	return s, nil
}

func toJSONSummary(s trace.Summary) jsonSummary {
	js := jsonSummary{StartPC: s.StartPC, Next: s.Next, Len: s.Len}
	for _, r := range s.Ins {
		js.Ins = append(js.Ins, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	for _, r := range s.Outs {
		js.Outs = append(js.Outs, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	return js
}

func (s *server) handleRTMInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Summary jsonSummary `json:"summary"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sum, err := req.Summary.summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sum.Len <= 0 {
		http.Error(w, "summary len must be positive", http.StatusBadRequest)
		return
	}
	seen := s.hist.Observe(&sum)
	s.shared.Insert(sum)
	writeJSON(w, map[string]any{"seenBefore": seen, "stored": s.shared.Stored()})
}

// mapState adapts caller-supplied location values to the reuse test.
type mapState map[trace.Loc]uint64

func (m mapState) ReadLoc(l trace.Loc) uint64 { return m[l] }

func (s *server) handleRTMLookup(w http.ResponseWriter, r *http.Request) {
	var req struct {
		PC    uint64    `json:"pc"`
		State []jsonRef `json:"state"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	st := make(mapState, len(req.State))
	for _, ref := range req.State {
		l, err := ref.Loc.loc()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st[l] = ref.Val
	}
	sum, ok := s.shared.Lookup(req.PC, st)
	resp := map[string]any{"hit": ok}
	if ok {
		resp["summary"] = toJSONSummary(sum)
	}
	writeJSON(w, resp)
}

// --- misc ---

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"service":        s.batcher.Stats(),
		"rtm":            s.shared.Stats(),
		"rtmStored":      s.shared.Stored(),
		"rtmShards":      s.shared.Shards(),
		"distinctTraces": s.hist.Vectors(),
	})
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"workloads": workload.Names()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tlrserve: write: %v", err)
	}
}
