// Command tlrserve serves the simulation API over HTTP/JSON: the public
// tlr Request/Run facade (worker pool, result cache, in-flight
// coalescing) behind POST /v1/run and POST /v1/batch, a digest-addressed
// trace store behind /v1/traces for record-once/sweep-many workflows,
// and a shared concurrent (sharded) Reuse Trace Memory behind /v1/rtm
// for trace-reuse-as-a-service experiments.
//
// Usage:
//
//	tlrserve [-addr :8321] [-workers N] [-cache N] [-trace-store-mb 64] [-trace-dir DIR]
//	         [-max-trace-mb 64] [-rtm-sets 128] [-rtm-ways 4] [-rtm-traces 8]
//
// # Run API
//
// POST /v1/run accepts one request in the tlr wire format — an
// instruction-stream input (a built-in "workload", assembly "source",
// or a recorded "trace" reference) plus exactly one configuration
// naming the simulation kind ("study", "rtm", "pipeline" or "vp") —
// and answers with one result:
//
//	{"workload": "gcc", "rtm": {"geometry": {"sets": 128, "pcWays": 4,
//	 "tracesPerPC": 8}, "heuristic": "ILR EXP"},
//	 "skip": 1000, "budget": 100000}
//
//	{"workload": "li", "pipeline": {"rtm": {"geometry": {"sets": 128,
//	 "pcWays": 4, "tracesPerPC": 8}}}, "budget": 100000}
//
// # Batch API
//
// POST /v1/batch accepts {"jobs": [...]} of the same request objects.
// The response streams one JSON result per line (NDJSON) as each
// simulation finishes; every line carries the job's batch index, so
// clients can reassemble deterministic order.  Identical requests —
// within a batch or across batches — are simulated once and answered
// from cache, and closing the connection cancels the batch, stopping
// in-flight simulations at their next cancellation check.
//
// # Trace store
//
// POST /v1/traces uploads a recorded trace file (the body is the raw
// file, any container version; see cmd/tlrtrace record) into the
// server's store and answers {"digest", "records", "tier", ...}.  The
// body is consumed incrementally — chunked uploads included — and
// with -trace-dir set it spools straight to a digest-named file in the
// store's disk tier while being validated and digested, so the server
// never holds the trace in memory however long the recording is
// (-max-trace-mb still bounds the total).  Run and batch requests then
// reference it by content digest without re-uploading:
//
//	{"trace": {"digest": "sha256:…"}, "study": {"budget": 100000,
//	 "window": 256}}
//
// Trace-driven kinds (study, rtm, vp) replay the stored stream instead
// of simulating a program — upload once, sweep the whole configuration
// grid.  Digest resolution falls through the tiers (memory LRU →
// disk → 404): small disk hits are promoted back into memory, large
// ones replay as incrementally decoded streams in O(batch) memory.
// Pipeline requests are execution-driven and reject trace inputs.
// GET /v1/traces lists the stored digests with their per-tier sizes
// and the tier occupancy/spill/promote counters; GET
// /v1/traces/{digest} downloads a stored trace as a version-4 file
// (straight from the disk tier's file when it lives there; see
// cmd/tlrtrace pull), so a recording made and uploaded on one host can
// be fetched and inspected on another.
//
// # Foreign traces and reuse-distance analytics
//
// POST /v1/ingest converts a foreign trace file — a CSV address trace
// or the "PC op" text format, gzip-transparent — into a canonical trace
// in the store (see the handler comment for the layout query
// parameters) and answers {"digest", "records", "lines", "rejected"}.
// POST /v1/analyze runs the reuse-distance analysis — exact binned LRU
// stack distances per operand-location class — over any stream input;
// the "analyze" configuration is implied, so a body of
// {"trace": {"digest": "sha256:…"}} analyses a stored trace over its
// whole length.  Analyses are cached and digest-routed like every other
// request kind.
//
// # Shared RTM
//
// POST /v1/rtm/insert stores a trace summary in the server-wide sharded
// RTM; POST /v1/rtm/lookup runs the reuse test against caller-supplied
// state.  Locations are {"kind": "r"|"f"|"m", "index": N}.  The RTM and
// the trace history behind it are lock-striped, so concurrent requests
// proceed in parallel — many goroutines, one engine instance.
//
// # Cluster
//
// With -peers (a comma-separated list of node base URLs, self
// included) and -self (this node's own entry in that list), a set of
// tlrserve processes becomes one digest-addressed fabric: a
// consistent-hash ring places every trace digest on -replication
// owner nodes.  Uploads store locally and replicate asynchronously to
// the other owners; TraceRef resolution falls through memory → disk →
// owner/replica peers (fetched traces stream into the local disk
// tier, which is why -peers requires -trace-dir) → 404; and a
// digest-referenced run posted to a node that does not hold the trace
// is forwarded to a node that does (falling back to pulling the trace
// once and caching it).  Node-to-node traffic uses the public
// endpoints with marker headers (X-Tlr-Replication, X-Tlr-Forwarded)
// so nothing echoes around the ring.  -result-dir (useful clustered or
// not) persists keyed results to disk, so a restarted node answers
// warm-cache requests without re-simulating.
//
// # Failure handling
//
// Each node heals the ring it can see.  A background anti-entropy
// loop (-repair-interval; POST /v1/repair runs one cycle on demand)
// scans the local store and backfills digests whose other owners do
// not hold them; replication failures leave durable hints (-hint-dir)
// redelivered when the peer's health probe recovers; a per-peer
// circuit breaker sheds calls to dead peers immediately and half-opens
// after a cooldown.  -max-inflight bounds admitted simulation work:
// beyond it, run/analyze/batch/ingest answer 429 with Retry-After
// instead of queueing toward a timeout.  SIGTERM/SIGINT shut down
// gracefully: stop accepting, drain open requests and the replication
// queue (-drain-timeout), then log a one-line drain summary.
// -chaos-drop and -chaos-delay inject transport faults on peer
// traffic for chaos testing.
//
// GET /healthz reports liveness; GET /v1/stats reports service, RTM,
// history, admission, and (when clustered) per-peer health and fabric
// counters.
// With -pprof, the standard net/http/pprof endpoints are mounted under
// /debug/pprof/ so decode and simulation hot paths can be profiled
// against the live server.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/cluster"
	"github.com/tracereuse/tlr/internal/core"
	"github.com/tracereuse/tlr/internal/metrics"
	"github.com/tracereuse/tlr/internal/rtm"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/tracefile"
	"github.com/tracereuse/tlr/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result cache capacity in jobs (0 = default)")
	traceStoreMB := flag.Int64("trace-store-mb", 0, "trace store memory tier capacity in MiB (0 = default 64)")
	traceDir := flag.String("trace-dir", "", "trace store disk tier directory (empty = memory only); created if absent")
	maxTraceMB := flag.Int64("max-trace-mb", 0, "largest accepted trace upload in MiB (0 = default 64)")
	rtmSets := flag.Int("rtm-sets", 128, "shared RTM sets (power of two)")
	rtmWays := flag.Int("rtm-ways", 4, "shared RTM PC ways per set")
	rtmTraces := flag.Int("rtm-traces", 8, "shared RTM traces per PC")
	rtmShards := flag.Int("rtm-shards", 0, "shared RTM lock stripes (0 = auto)")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	resultDir := flag.String("result-dir", "", "persistent result cache directory (empty = memory only); created if absent")
	peers := flag.String("peers", "", "comma-separated cluster peer base URLs, self included (empty = single node)")
	self := flag.String("self", "", "this node's base URL; required with -peers and must appear in the list")
	replication := flag.Int("replication", 2, "cluster replication factor (owners per digest)")
	peerProbe := flag.Duration("peer-probe", 10*time.Second, "peer health probe interval (0 disables probing)")
	repairEvery := flag.Duration("repair-interval", time.Minute, "anti-entropy repair interval (0 disables the loop; POST /v1/repair still runs one cycle)")
	hintDir := flag.String("hint-dir", "", "durable replication hint directory (empty = in-memory hints only); created if absent")
	maxInflight := flag.Int("max-inflight", 0, "in-flight job admission budget for run/analyze/batch/ingest (0 = unlimited); beyond it requests get 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for open requests and replication queues")
	chaosDrop := flag.Float64("chaos-drop", 0, "fault injection: probability [0,1) of dropping each peer request (testing only)")
	chaosDelay := flag.Duration("chaos-delay", 0, "fault injection: added latency on every peer request (testing only)")
	flag.Parse()

	geom := rtm.Geometry{Sets: *rtmSets, PCWays: *rtmWays, TracesPerPC: *rtmTraces}
	if geom.Sets <= 0 || geom.Sets&(geom.Sets-1) != 0 {
		log.Fatalf("tlrserve: -rtm-sets must be a positive power of two, got %d", geom.Sets)
	}
	if geom.PCWays < 1 || geom.TracesPerPC < 1 {
		log.Fatalf("tlrserve: -rtm-ways and -rtm-traces must be >= 1, got %d and %d",
			geom.PCWays, geom.TracesPerPC)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			log.Fatalf("tlrserve: -trace-dir: %v", err)
		}
	}
	if *resultDir != "" {
		if err := os.MkdirAll(*resultDir, 0o755); err != nil {
			log.Fatalf("tlrserve: -result-dir: %v", err)
		}
	}
	opt := tlr.BatchOptions{
		Workers:         *workers,
		CacheSize:       *cache,
		TraceStoreBytes: *traceStoreMB << 20,
		TraceDir:        *traceDir,
		ResultDir:       *resultDir,
		MaxInflight:     *maxInflight,
	}
	var cc *cluster.Config
	if *peers != "" {
		if *traceDir == "" {
			// Peer fetches stream into the disk tier; without one every
			// fetched trace would have to be decoded fully into memory.
			log.Fatalf("tlrserve: -peers requires -trace-dir")
		}
		if *self == "" {
			log.Fatalf("tlrserve: -peers requires -self")
		}
		cc = &cluster.Config{
			Self:        strings.TrimRight(*self, "/"),
			Peers:       splitPeers(*peers),
			Replication: *replication,
			ProbeEvery:  *peerProbe,
			RepairEvery: *repairEvery,
			HintDir:     *hintDir,
			Logf:        log.Printf,
		}
		if *chaosDrop > 0 || *chaosDelay > 0 {
			// Every peer request flows through the fault injector; the
			// flags exist so chaos smoke tests can exercise the repair,
			// hint, and breaker paths against a real process.
			inj := cluster.NewInjector(nil)
			if *chaosDelay > 0 {
				inj.Add(&cluster.InjectRule{Delay: *chaosDelay})
			}
			if *chaosDrop > 0 {
				inj.Add(&cluster.InjectRule{Prob: *chaosDrop, Drop: true})
			}
			cc.Client = &http.Client{Transport: inj}
			log.Printf("tlrserve: chaos injection on peer traffic: drop %.2f, delay %s", *chaosDrop, *chaosDelay)
		}
	}
	srv, err := newClusterServer(opt, geom, *rtmShards, cc)
	if err != nil {
		log.Fatalf("tlrserve: %v", err)
	}
	if *maxTraceMB > 0 {
		srv.maxTraceBytes = *maxTraceMB << 20
	}
	mux := srv.mux()
	if *withPprof {
		mountPprof(mux)
		log.Printf("tlrserve: pprof enabled at /debug/pprof/")
	}
	if srv.fabric != nil {
		log.Printf("tlrserve: cluster fabric: self %s, %d peers, replication %d",
			srv.fabric.Self(), len(srv.fabric.Peers()), srv.fabric.Replication())
	}
	log.Printf("tlrserve: listening on %s (shared RTM %v, %d stripes)",
		*addr, geom, srv.shared.Shards())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.instrument(mux),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("tlrserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain
	log.Printf("tlrserve: shutdown signal; draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("tlrserve: shutdown: %v", err)
	}
	replDrained := true
	hintsPending := 0
	if srv.fabric != nil {
		if err := srv.fabric.Drain(dctx); err != nil {
			replDrained = false
			log.Printf("tlrserve: replication drain: %v", err)
		}
		hintsPending = srv.fabric.HintsPending()
		srv.fabric.Close()
	}
	st := srv.batcher.Stats()
	srv.batcher.Close()
	replState := "replication drained"
	if !replDrained {
		replState = "replication NOT drained"
	}
	log.Printf("tlrserve: drained: %d requests served, %s, %d hints pending; exiting",
		st.Submitted, replState, hintsPending)
}

// splitPeers parses the -peers flag, trimming whitespace and trailing
// slashes so "http://a:1/, http://b:2" and "http://a:1,http://b:2"
// build identical rings.
func splitPeers(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

type server struct {
	batcher       *tlr.Batcher
	shared        *rtm.Sharded
	hist          *core.ShardedTraceHistory
	fabric        *cluster.Fabric // nil: single node
	maxTraceBytes int64

	runtimeC *metrics.RuntimeCollector
	hm       httpMetrics
}

func newServer(opt tlr.BatchOptions, geom rtm.Geometry, shards int) *server {
	s := &server{
		batcher:       tlr.NewBatcher(opt),
		shared:        rtm.NewSharded(geom, 1, shards),
		hist:          core.NewShardedTraceHistory(0),
		maxTraceBytes: 64 << 20,
	}
	s.registerMetrics()
	return s
}

// newClusterServer builds a server, joining the cluster fabric when cc
// is non-nil.  The batcher's PeerFetch and the fabric's ReadTrace
// reference each other, so the fabric is late-bound through a nil-safe
// closure: the batcher is constructed first with a PeerFetch that
// consults the fabric variable, then the fabric is wired to the
// batcher's store — all before the server takes traffic.
func newClusterServer(opt tlr.BatchOptions, geom rtm.Geometry, shards int, cc *cluster.Config) (*server, error) {
	var fab *cluster.Fabric
	if cc != nil {
		opt.PeerFetch = func(digest string, exclude []string) (io.ReadCloser, string, error) {
			if fab == nil {
				return nil, "", nil
			}
			return fab.Fetch(digest, exclude...)
		}
	}
	s := newServer(opt, geom, shards)
	if cc != nil {
		// The fabric's instruments join the batcher's registry, so one
		// /metrics scrape covers both layers.
		cc.Registry = s.batcher.Metrics()
		cc.ReadTrace = func(digest string, w io.Writer) (bool, error) {
			_, ok, err := s.batcher.WriteTraceTo(digest, w)
			return ok, err
		}
		cc.ListDigests = s.batcher.TraceDigests
		var err error
		fab, err = cluster.New(*cc)
		if err != nil {
			s.batcher.Close()
			return nil, err
		}
		s.fabric = fab
	}
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{digest}", s.handleTraceDownload)
	mux.HandleFunc("POST /v1/rtm/insert", s.handleRTMInsert)
	mux.HandleFunc("POST /v1/rtm/lookup", s.handleRTMLookup)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	return mux
}

// admit reserves n in-flight job slots for a simulation-bearing request
// (run, analyze, batch, ingest), shedding load with 429 + Retry-After
// when the -max-inflight budget is exhausted.  Refusing up front keeps
// an overloaded node answering fast — a bounded queue the client can
// back off from — instead of timing everything out.  Trace uploads,
// downloads, replication, and stats are never shed: they are cheap
// relative to simulations and shedding them would fight replication
// and repair.  When ok is false the response has been written.
func (s *server) admit(w http.ResponseWriter, n int) (release func(), ok bool) {
	release, err := s.batcher.Reserve(n)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return nil, false
	}
	return release, true
}

// handleRepair runs one synchronous anti-entropy repair cycle and
// reports what it checked and backfilled — the on-demand twin of the
// -repair-interval loop, for operators and tests that want convergence
// now rather than at the next tick.
func (s *server) handleRepair(w http.ResponseWriter, _ *http.Request) {
	if s.fabric == nil {
		http.Error(w, "not clustered: repair needs -peers", http.StatusBadRequest)
		return
	}
	writeJSON(w, s.fabric.RepairCycle())
}

// --- trace store API ---

// handleTraceUpload streams an uploaded trace file (untrusted input:
// the decoder is fuzzed, size-capped, and validates the embedded
// digest) into the store under its content digest for later
// digest-referenced runs.  The body — chunked or not — is consumed
// incrementally: with a disk tier it spools straight to the
// digest-named file while being validated and digested, so the server
// never buffers the upload (-max-trace-mb still bounds the total
// bytes it will read).
func (s *server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxTraceBytes)
	info, err := s.batcher.StoreTraceFrom(body)
	if err != nil {
		// Invalid bytes are the client's fault; a store that cannot
		// write (disk full, unwritable -trace-dir) is the server's.
		if errors.Is(err, tracefile.ErrStoreWrite) {
			http.Error(w, "trace store: "+err.Error(), http.StatusInternalServerError)
			return
		}
		http.Error(w, "bad trace: "+err.Error(), http.StatusBadRequest)
		return
	}
	if s.fabric != nil && r.Header.Get(cluster.HeaderReplication) == "" {
		// A client upload: place copies on the digest's other owners.
		// Replica placements arrive with the marker header and are never
		// re-replicated, so copies cannot echo around the ring.
		s.fabric.Replicate(info.Digest)
	}
	writeJSON(w, map[string]any{
		"digest":    info.Digest,
		"records":   info.Records,
		"bytes":     info.Bytes,
		"diskBytes": info.DiskBytes,
		"tier":      info.Tier,
	})
}

func (s *server) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	infos := s.batcher.Traces()
	type traceInfo struct {
		Digest         string `json:"digest"`
		Records        uint64 `json:"records"`
		Bytes          int    `json:"bytes"`
		CanonicalBytes int    `json:"canonicalBytes"`
		Tier           string `json:"tier"`
		DiskBytes      int64  `json:"diskBytes,omitempty"`
	}
	out := make([]traceInfo, len(infos))
	for i, t := range infos {
		out[i] = traceInfo{
			Digest:         t.Digest,
			Records:        t.Records,
			Bytes:          t.Bytes,
			CanonicalBytes: t.CanonicalBytes,
			Tier:           t.Tier,
			DiskBytes:      t.DiskBytes,
		}
	}
	// Tier occupancy comes from the store's own counters (the same
	// numbers /v1/stats reports), not re-derived from the listing.
	st := s.batcher.Stats()
	writeJSON(w, map[string]any{
		"traces": out,
		"tiers": map[string]any{
			"memory": map[string]any{"traces": st.Traces, "bytes": st.TraceBytes},
			"disk":   map[string]any{"traces": st.TraceDisk, "bytes": st.TraceDiskBytes},
			"spills": st.TraceSpills, "promotes": st.TracePromotes,
		},
	})
}

// handleTraceDownload streams a stored trace back as a version-4 trace
// file — straight from the disk tier's file when the trace lives
// there, without decoding it: the other half of the upload/reference
// workflow, so a recording pushed from one host can be pulled,
// inspected and replayed on another (cmd/tlrtrace pull).
func (s *server) handleTraceDownload(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if r.Method == http.MethodHead {
		// Existence probe — the repair loop's owner check.  Answering
		// from the store index avoids opening (or decoding) anything.
		if !s.batcher.HasTrace(digest) {
			http.Error(w, fmt.Sprintf("no stored trace with digest %q", digest), http.StatusNotFound)
			return
		}
		w.Header().Set("X-Trace-Digest", digest)
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Trace-Digest", digest)
	// WriteTraceTo resolves the digest before writing a byte, so a miss
	// — or a disk-tier file that fails to open — can still become a
	// clean error status.
	n, ok, err := s.batcher.WriteTraceTo(digest, w)
	if !ok {
		w.Header().Del("X-Trace-Digest")
		w.Header().Del("Content-Type")
		http.Error(w, fmt.Sprintf("no stored trace with digest %q", digest), http.StatusNotFound)
		return
	}
	if err != nil {
		log.Printf("tlrserve: trace download %s: %v", digest, err)
		if n == 0 {
			w.Header().Del("X-Trace-Digest")
			w.Header().Del("Content-Type")
			http.Error(w, "trace store read failed", http.StatusInternalServerError)
			return
		}
		// Bytes are already out and the body is chunked: returning
		// normally would close the response cleanly and hand the client
		// a truncated trace that looks complete.  Abort the connection
		// instead so the truncation is visible at the transport level.
		panic(http.ErrAbortHandler)
	}
}

// handleIngest converts an uploaded foreign trace — a CSV address trace
// or the "PC op" text format, optionally gzip-compressed — into a
// canonical trace in the store, the foreign twin of POST /v1/traces.
// The format is selected by query parameters:
//
//	POST /v1/ingest?format=csv&addr-col=0&op-col=1   (CSV layout)
//	POST /v1/ingest?format=pc                        (PC-op text)
//
// CSV knobs: addr-col (default 0), op-col, pc-col (-1 = absent, the
// default), comma (single character), header=1, addr-base (0/10/16).
// lenient=1 skips malformed lines instead of failing; the response
// reports {"digest", "records", "lines", "rejected"}.  The converted
// trace is digest-addressed and replicates across a cluster exactly
// like an uploaded one.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	intParam := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %q is not an integer", name, v)
		}
		return n, nil
	}
	var format tlr.IngestFormat
	switch q.Get("format") {
	case "", "csv":
		csv := &tlr.CSVFormat{}
		var err error
		if csv.AddrCol, err = intParam("addr-col", 0); err == nil {
			if csv.OpCol, err = intParam("op-col", -1); err == nil {
				if csv.PCCol, err = intParam("pc-col", -1); err == nil {
					csv.AddrBase, err = intParam("addr-base", 0)
				}
			}
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if c := q.Get("comma"); c != "" {
			runes := []rune(c)
			if len(runes) != 1 {
				http.Error(w, fmt.Sprintf("bad comma: %q is not a single character", c), http.StatusBadRequest)
				return
			}
			csv.Comma = runes[0]
		}
		csv.Header = q.Get("header") == "1" || q.Get("header") == "true"
		format.CSV = csv
	case "pc", "pctext":
		format.PCText = &tlr.PCTextFormat{}
	default:
		http.Error(w, fmt.Sprintf("unknown ingest format %q (want csv or pc)", q.Get("format")), http.StatusBadRequest)
		return
	}
	lenient := q.Get("lenient") == "1" || q.Get("lenient") == "true"

	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	body := http.MaxBytesReader(w, r.Body, s.maxTraceBytes)
	digest, st, err := s.batcher.IngestTrace(body, format, tlr.IngestOptions{Lenient: lenient})
	if err != nil {
		http.Error(w, "bad foreign trace: "+err.Error(), http.StatusBadRequest)
		return
	}
	if s.fabric != nil && r.Header.Get(cluster.HeaderReplication) == "" {
		s.fabric.Replicate(digest)
	}
	writeJSON(w, map[string]any{
		"digest":   digest,
		"records":  st.Records,
		"lines":    st.Lines,
		"rejected": st.Rejected,
	})
}

// --- run and batch APIs ---

// maxRequestBytes bounds run/batch request bodies.  A request may carry
// a base64-inlined trace (~4/3 the trace's size), so the bound scales
// with the trace cap plus headroom for the rest of the payload; batches
// inlining several large traces should upload them to /v1/traces and
// reference digests instead.
func (s *server) maxRequestBytes() int64 {
	return 2*s.maxTraceBytes + 8<<20
}

// handleRun executes one request of any kind through the public facade.
// Malformed requests are a 400; a simulation failure is a 200 whose
// result carries the error, mirroring the library's Run contract.  On
// a clustered server, a digest-referenced request whose trace lives
// elsewhere is forwarded to a node that holds it (digest routing); if
// no healthy holder is reachable the run proceeds locally, pulling the
// trace from a peer once and caching it.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req tlr.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxRequestBytes())).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	s.serveRun(w, r, req)
}

// handleAnalyze is POST /v1/run specialised to reuse-distance analysis:
// the "analyze" configuration is implied, so {"trace": {"digest": …}}
// alone analyses a stored (typically ingested) trace over its whole
// length.  A request naming a different kind is a 400; everything else
// — validation, digest routing, caching — matches /v1/run exactly.
func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req tlr.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxRequestBytes())).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Kind() == "" && req.Analyze == nil {
		req.Analyze = &tlr.AnalyzeConfig{}
	}
	if req.Kind() != tlr.KindAnalyze {
		http.Error(w, fmt.Sprintf("/v1/analyze only runs analyze requests (got kind %q); use /v1/run", req.Kind()), http.StatusBadRequest)
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	s.serveRun(w, r, req)
}

// serveRun executes one decoded request: forwarded to the node holding
// its referenced trace when clustered, locally otherwise.
func (s *server) serveRun(w http.ResponseWriter, r *http.Request, req tlr.Request) {
	if res, ok := s.forwardRun(r, req); ok {
		writeJSON(w, res)
		return
	}
	res, err := s.batcher.Run(r.Context(), req)
	if err != nil && res.Kind == "" {
		// Never submitted: the request failed validation.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.fabric != nil {
		res.Node = s.fabric.Self()
	}
	writeJSON(w, res)
}

// forwardRun routes a digest-referenced run to a node already holding
// the trace.  It declines (ok=false) whenever local execution is the
// right call: not clustered, already-forwarded traffic (one hop only),
// no trace reference, the trace is held locally, or no healthy owner
// is reachable.  A forwarding transport error also falls back to a
// local run — resolution then pulls the trace from a peer and caches
// it, so the request still completes.
func (s *server) forwardRun(r *http.Request, req tlr.Request) (tlr.Result, bool) {
	if s.fabric == nil || r.Header.Get(cluster.HeaderForwarded) != "" || r.Header.Get(cluster.HeaderReplication) != "" {
		return tlr.Result{}, false
	}
	digest := tlr.TraceRefDigest(req.Trace)
	if digest == "" || s.batcher.HasTrace(digest) {
		return tlr.Result{}, false
	}
	target, ok := s.fabric.ForwardTarget(digest)
	if !ok {
		return tlr.Result{}, false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return tlr.Result{}, false
	}
	out, err := s.fabric.PostRun(r.Context(), target, body)
	if err != nil {
		log.Printf("tlrserve: forward run to %s: %v (running locally)", target, err)
		return tlr.Result{}, false
	}
	var res tlr.Result
	if err := json.Unmarshal(out, &res); err != nil {
		log.Printf("tlrserve: forward run to %s: bad response: %v (running locally)", target, err)
		return tlr.Result{}, false
	}
	res.Forwarded = true
	if res.Node == "" {
		res.Node = target
	}
	return res, true
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Jobs []tlr.Request `json:"jobs"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxRequestBytes())).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	reqs := req.Jobs
	if len(reqs) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	// A batch charges the admission budget for every job it carries, so
	// one huge batch cannot slip past a budget tuned for single runs.
	release, ok := s.admit(w, len(reqs))
	if !ok {
		return
	}
	defer release()
	// The request context cancels the batch on client disconnect:
	// undispatched jobs are skipped and in-flight simulations stop at
	// their next cancellation check.
	stream, err := s.batcher.StreamBatch(r.Context(), reqs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range stream {
		if s.fabric != nil {
			res.Node = s.fabric.Self()
		}
		if err := enc.Encode(&res); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// --- shared RTM API ---

type jsonLoc struct {
	Kind  string `json:"kind"` // "r", "f", "m"
	Index uint64 `json:"index"`
}

func (l jsonLoc) loc() (trace.Loc, error) {
	switch l.Kind {
	case "r":
		return trace.IntReg(uint8(l.Index)), nil
	case "f":
		return trace.FPReg(uint8(l.Index)), nil
	case "m":
		return trace.Mem(l.Index), nil
	default:
		return 0, fmt.Errorf("unknown location kind %q", l.Kind)
	}
}

func toJSONLoc(l trace.Loc) jsonLoc {
	switch l.Kind() {
	case trace.KindIntReg:
		return jsonLoc{Kind: "r", Index: l.Index()}
	case trace.KindFPReg:
		return jsonLoc{Kind: "f", Index: l.Index()}
	default:
		return jsonLoc{Kind: "m", Index: l.Index()}
	}
}

type jsonRef struct {
	Loc jsonLoc `json:"loc"`
	Val uint64  `json:"val"`
}

type jsonSummary struct {
	StartPC uint64    `json:"startPC"`
	Next    uint64    `json:"next"`
	Len     int       `json:"len"`
	Ins     []jsonRef `json:"ins"`
	Outs    []jsonRef `json:"outs"`
}

func (js jsonSummary) summary() (trace.Summary, error) {
	s := trace.Summary{StartPC: js.StartPC, Next: js.Next, Len: js.Len}
	for _, r := range js.Ins {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Ins = append(s.Ins, trace.Ref{Loc: l, Val: r.Val})
	}
	for _, r := range js.Outs {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Outs = append(s.Outs, trace.Ref{Loc: l, Val: r.Val})
	}
	return s, nil
}

func toJSONSummary(s trace.Summary) jsonSummary {
	js := jsonSummary{StartPC: s.StartPC, Next: s.Next, Len: s.Len}
	for _, r := range s.Ins {
		js.Ins = append(js.Ins, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	for _, r := range s.Outs {
		js.Outs = append(js.Outs, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	return js
}

func (s *server) handleRTMInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Summary jsonSummary `json:"summary"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sum, err := req.Summary.summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sum.Len <= 0 {
		http.Error(w, "summary len must be positive", http.StatusBadRequest)
		return
	}
	seen := s.hist.Observe(&sum)
	s.shared.Insert(sum)
	writeJSON(w, map[string]any{"seenBefore": seen, "stored": s.shared.Stored()})
}

// mapState adapts caller-supplied location values to the reuse test.
type mapState map[trace.Loc]uint64

func (m mapState) ReadLoc(l trace.Loc) uint64 { return m[l] }

func (s *server) handleRTMLookup(w http.ResponseWriter, r *http.Request) {
	var req struct {
		PC    uint64    `json:"pc"`
		State []jsonRef `json:"state"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	st := make(mapState, len(req.State))
	for _, ref := range req.State {
		l, err := ref.Loc.loc()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st[l] = ref.Val
	}
	sum, ok := s.shared.Lookup(req.PC, st)
	resp := map[string]any{"hit": ok}
	if ok {
		resp["summary"] = toJSONSummary(sum)
	}
	writeJSON(w, resp)
}

// --- misc ---

// mountPprof exposes the standard profiling endpoints on the server's
// own mux (the default-mux registrations in net/http/pprof's init do
// not apply here), gated behind -pprof so production deployments opt
// in: profiles expose internals and cost CPU while sampling.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.batcher.Stats()
	out := map[string]any{
		"service": st,
		"traceStore": map[string]any{
			"hits": st.TraceHits, "misses": st.TraceMisses,
			"memory":      map[string]any{"traces": st.Traces, "bytes": st.TraceBytes},
			"disk":        map[string]any{"traces": st.TraceDisk, "bytes": st.TraceDiskBytes},
			"spills":      st.TraceSpills,
			"promotes":    st.TracePromotes,
			"peerFetches": st.TracePeerFetches,
			"peerRejects": st.TracePeerRejects,
		},
		"resultCache": map[string]any{
			"entries":     st.Results,
			"diskEntries": st.ResultsOnDisk,
			"diskHits":    st.ResultDiskHits,
			"diskWrites":  st.ResultDiskWrites,
		},
		"analytics": map[string]any{
			"analyzeRuns":     st.AnalyzeRuns,
			"analyzeHits":     st.AnalyzeHits,
			"ingestedTraces":  st.IngestedTraces,
			"ingestedRecords": st.IngestedRecords,
			"ingestRejects":   st.IngestRejects,
		},
		"admission": map[string]any{
			"inflightJobs": st.InflightJobs,
			"maxInflight":  st.MaxInflight,
			"shed":         st.Shed,
		},
		"rtm":            s.shared.Stats(),
		"rtmStored":      s.shared.Stored(),
		"rtmShards":      s.shared.Shards(),
		"distinctTraces": s.hist.Vectors(),
		// The runtime section reads the same collector behind the go_*
		// gauges /metrics exports, so the two views cannot disagree.
		"runtime": s.runtimeC.Read(),
	}
	if s.fabric != nil {
		out["cluster"] = map[string]any{
			"self":        s.fabric.Self(),
			"peers":       s.fabric.Peers(),
			"replication": s.fabric.Replication(),
			"health":      s.fabric.Health(),
			"fabric":      s.fabric.StatsSnapshot(),
		}
	}
	writeJSON(w, out)
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"workloads": workload.Names()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tlrserve: write: %v", err)
	}
}
