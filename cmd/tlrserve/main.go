// Command tlrserve serves the batch simulation API over HTTP/JSON: a
// worker pool plus result cache behind POST /v1/batch, and a shared
// concurrent (sharded) Reuse Trace Memory behind /v1/rtm for
// trace-reuse-as-a-service experiments.
//
// Usage:
//
//	tlrserve [-addr :8321] [-workers N] [-cache N] [-rtm-sets 128] [-rtm-ways 4] [-rtm-traces 8]
//
// # Batch API
//
// POST /v1/batch accepts {"jobs": [...]} where each job names a program
// (a built-in "workload" or assembly "source") and one configuration:
//
//	{"id": "cell1", "workload": "gcc", "kind": "rtm",
//	 "rtm": {"geometry": {"sets": 128, "pcWays": 4, "tracesPerPC": 8},
//	         "heuristic": "ILR EXP"},
//	 "skip": 1000, "budget": 100000}
//
//	{"id": "limits", "workload": "li", "kind": "study",
//	 "study": {"budget": 100000, "skip": 1000, "window": 256}}
//
// The response streams one JSON object per line (NDJSON) as each job
// finishes; every line carries the job's batch index, so clients can
// reassemble deterministic order.  Identical jobs — within a batch or
// across batches — are simulated once and answered from cache.
//
// # Shared RTM
//
// POST /v1/rtm/insert stores a trace summary in the server-wide sharded
// RTM; POST /v1/rtm/lookup runs the reuse test against caller-supplied
// state.  Locations are {"kind": "r"|"f"|"m", "index": N}.  The RTM and
// the trace history behind it are lock-striped, so concurrent requests
// proceed in parallel — many goroutines, one engine instance.
//
// GET /healthz reports liveness; GET /v1/stats reports service, RTM and
// history counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"github.com/tracereuse/tlr/internal/core"
	"github.com/tracereuse/tlr/internal/isa"
	"github.com/tracereuse/tlr/internal/rtm"
	"github.com/tracereuse/tlr/internal/service"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result cache capacity in jobs (0 = default)")
	rtmSets := flag.Int("rtm-sets", 128, "shared RTM sets (power of two)")
	rtmWays := flag.Int("rtm-ways", 4, "shared RTM PC ways per set")
	rtmTraces := flag.Int("rtm-traces", 8, "shared RTM traces per PC")
	rtmShards := flag.Int("rtm-shards", 0, "shared RTM lock stripes (0 = auto)")
	flag.Parse()

	geom := rtm.Geometry{Sets: *rtmSets, PCWays: *rtmWays, TracesPerPC: *rtmTraces}
	if geom.Sets <= 0 || geom.Sets&(geom.Sets-1) != 0 {
		log.Fatalf("tlrserve: -rtm-sets must be a positive power of two, got %d", geom.Sets)
	}
	if geom.PCWays < 1 || geom.TracesPerPC < 1 {
		log.Fatalf("tlrserve: -rtm-ways and -rtm-traces must be >= 1, got %d and %d",
			geom.PCWays, geom.TracesPerPC)
	}
	srv := &server{
		svc:    service.New(service.Options{Workers: *workers, ResultCache: *cache}),
		shared: rtm.NewSharded(geom, 1, *rtmShards),
		hist:   core.NewShardedTraceHistory(0),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("GET /v1/workloads", srv.handleWorkloads)
	mux.HandleFunc("POST /v1/batch", srv.handleBatch)
	mux.HandleFunc("POST /v1/rtm/insert", srv.handleRTMInsert)
	mux.HandleFunc("POST /v1/rtm/lookup", srv.handleRTMLookup)

	log.Printf("tlrserve: listening on %s (shared RTM %v, %d stripes)",
		*addr, geom, srv.shared.Shards())
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type server struct {
	svc    *service.Service
	shared *rtm.Sharded
	hist   *core.ShardedTraceHistory
}

// --- batch API ---

type batchRequest struct {
	Jobs []jobRequest `json:"jobs"`
}

type jobRequest struct {
	ID       string       `json:"id"`
	Workload string       `json:"workload,omitempty"`
	Source   string       `json:"source,omitempty"`
	Kind     string       `json:"kind"` // "study" or "rtm"
	Study    *studyParams `json:"study,omitempty"`
	RTM      *rtmParams   `json:"rtm,omitempty"`
	Skip     uint64       `json:"skip,omitempty"`
	Budget   uint64       `json:"budget,omitempty"`
}

type studyParams struct {
	Budget       uint64    `json:"budget"`
	Skip         uint64    `json:"skip,omitempty"`
	Window       int       `json:"window,omitempty"`
	ILRLatencies []float64 `json:"ilrLatencies,omitempty"`
	TLRConst     []float64 `json:"tlrConst,omitempty"`
	TLRProp      []float64 `json:"tlrProp,omitempty"`
	Strict       bool      `json:"strict,omitempty"`
	MaxRunLen    int       `json:"maxRunLen,omitempty"`
}

type rtmParams struct {
	Geometry struct {
		Sets        int `json:"sets"`
		PCWays      int `json:"pcWays"`
		TracesPerPC int `json:"tracesPerPC"`
	} `json:"geometry"`
	Heuristic         string `json:"heuristic,omitempty"` // "ILR NE", "ILR EXP", "IEXP"
	N                 int    `json:"n,omitempty"`
	MinLen            int    `json:"minLen,omitempty"`
	InvalidateOnWrite bool   `json:"invalidateOnWrite,omitempty"`
}

type jobResponse struct {
	Index  int                  `json:"index"`
	ID     string               `json:"id"`
	Cached bool                 `json:"cached"`
	Study  *service.StudyOutput `json:"study,omitempty"`
	RTM    *rtm.Result          `json:"rtm,omitempty"`
	Error  string               `json:"error,omitempty"`
}

func parseHeuristic(s string) (rtm.Heuristic, error) {
	switch strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(s), "_", " ")) {
	case "", "ILR NE", "ILRNE":
		return rtm.ILRNE, nil
	case "ILR EXP", "ILREXP":
		return rtm.ILREXP, nil
	case "IEXP", "I(N) EXP", "I EXP":
		return rtm.IEXP, nil
	default:
		return 0, fmt.Errorf("unknown heuristic %q", s)
	}
}

// convert builds the service job for one request, reporting whether it
// is a study job.
func (s *server) convert(i int, j jobRequest) (service.Job, bool, error) {
	id := j.ID
	if id == "" {
		id = fmt.Sprint(i)
	}
	prog, err := s.resolveProgram(j)
	if err != nil {
		return service.Job{}, false, err
	}
	switch j.Kind {
	case "study":
		if j.Study == nil {
			return service.Job{}, false, fmt.Errorf("study job needs a study config")
		}
		p := service.StudyParams{
			Budget:       j.Study.Budget,
			Skip:         j.Study.Skip,
			Window:       j.Study.Window,
			ILRLatencies: j.Study.ILRLatencies,
			Strict:       j.Study.Strict,
			MaxRunLen:    j.Study.MaxRunLen,
		}
		for _, c := range j.Study.TLRConst {
			p.TLRVariants = append(p.TLRVariants, core.ConstLatency(c))
		}
		for _, k := range j.Study.TLRProp {
			p.TLRVariants = append(p.TLRVariants, core.PropLatency(k))
		}
		return service.StudyJob(id, prog.key, prog.prog, p), true, nil
	case "rtm":
		if j.RTM == nil {
			return service.Job{}, false, fmt.Errorf("rtm job needs an rtm config")
		}
		if j.Budget == 0 {
			return service.Job{}, false, fmt.Errorf("rtm job needs a positive budget")
		}
		h, err := parseHeuristic(j.RTM.Heuristic)
		if err != nil {
			return service.Job{}, false, err
		}
		cfg := rtm.Config{
			Geometry: rtm.Geometry{
				Sets:        j.RTM.Geometry.Sets,
				PCWays:      j.RTM.Geometry.PCWays,
				TracesPerPC: j.RTM.Geometry.TracesPerPC,
			},
			Heuristic:         h,
			N:                 j.RTM.N,
			MinLen:            j.RTM.MinLen,
			InvalidateOnWrite: j.RTM.InvalidateOnWrite,
		}
		if cfg.Geometry.Sets <= 0 || cfg.Geometry.Sets&(cfg.Geometry.Sets-1) != 0 {
			return service.Job{}, false, fmt.Errorf("geometry sets must be a positive power of two")
		}
		return service.RTMJob(id, prog.key, prog.prog, service.RTMParams{
			Config: cfg, Skip: j.Skip, Budget: j.Budget,
		}), false, nil
	default:
		return service.Job{}, false, fmt.Errorf("unknown kind %q (want \"study\" or \"rtm\")", j.Kind)
	}
}

type resolvedProgram struct {
	prog *isa.Program
	key  string
}

// resolveProgram finds or assembles the job's program.
func (s *server) resolveProgram(j jobRequest) (resolvedProgram, error) {
	switch {
	case j.Workload != "" && j.Source == "":
		w, ok := workload.ByName(j.Workload)
		if !ok {
			return resolvedProgram{}, fmt.Errorf("unknown workload %q", j.Workload)
		}
		prog, err := w.Program()
		if err != nil {
			return resolvedProgram{}, err
		}
		return resolvedProgram{prog: prog, key: "workload:" + j.Workload}, nil
	case j.Source != "" && j.Workload == "":
		prog, err := s.svc.Program(j.Source)
		if err != nil {
			return resolvedProgram{}, err
		}
		return resolvedProgram{prog: prog, key: service.Fingerprint(prog)}, nil
	default:
		return resolvedProgram{}, fmt.Errorf("exactly one of workload, source must be set")
	}
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	jobs := make([]service.Job, len(req.Jobs))
	study := make([]bool, len(req.Jobs))
	for i, j := range req.Jobs {
		sj, isStudy, err := s.convert(i, j)
		if err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return
		}
		jobs[i] = sj
		study[i] = isStudy
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	batch := s.svc.Submit(jobs, 0)
	// On client disconnect, cancel the batch so undispatched jobs stop
	// occupying the worker pool (running simulations finish; the batch's
	// buffered channel absorbs their results).
	defer batch.Cancel()
	ctx := r.Context()
	for i := 0; i < batch.Len(); i++ {
		var res service.Result
		select {
		case res = <-batch.Results():
		case <-ctx.Done():
			return
		}
		line := jobResponse{Index: res.Index, ID: res.ID, Cached: res.Cached}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else if study[res.Index] {
			o := res.Value.(service.StudyOutput)
			line.Study = &o
		} else {
			o := res.Value.(rtm.Result)
			line.RTM = &o
		}
		if err := enc.Encode(&line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// --- shared RTM API ---

type jsonLoc struct {
	Kind  string `json:"kind"` // "r", "f", "m"
	Index uint64 `json:"index"`
}

func (l jsonLoc) loc() (trace.Loc, error) {
	switch l.Kind {
	case "r":
		return trace.IntReg(uint8(l.Index)), nil
	case "f":
		return trace.FPReg(uint8(l.Index)), nil
	case "m":
		return trace.Mem(l.Index), nil
	default:
		return 0, fmt.Errorf("unknown location kind %q", l.Kind)
	}
}

func toJSONLoc(l trace.Loc) jsonLoc {
	switch l.Kind() {
	case trace.KindIntReg:
		return jsonLoc{Kind: "r", Index: l.Index()}
	case trace.KindFPReg:
		return jsonLoc{Kind: "f", Index: l.Index()}
	default:
		return jsonLoc{Kind: "m", Index: l.Index()}
	}
}

type jsonRef struct {
	Loc jsonLoc `json:"loc"`
	Val uint64  `json:"val"`
}

type jsonSummary struct {
	StartPC uint64    `json:"startPC"`
	Next    uint64    `json:"next"`
	Len     int       `json:"len"`
	Ins     []jsonRef `json:"ins"`
	Outs    []jsonRef `json:"outs"`
}

func (js jsonSummary) summary() (trace.Summary, error) {
	s := trace.Summary{StartPC: js.StartPC, Next: js.Next, Len: js.Len}
	for _, r := range js.Ins {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Ins = append(s.Ins, trace.Ref{Loc: l, Val: r.Val})
	}
	for _, r := range js.Outs {
		l, err := r.Loc.loc()
		if err != nil {
			return s, err
		}
		s.Outs = append(s.Outs, trace.Ref{Loc: l, Val: r.Val})
	}
	return s, nil
}

func toJSONSummary(s trace.Summary) jsonSummary {
	js := jsonSummary{StartPC: s.StartPC, Next: s.Next, Len: s.Len}
	for _, r := range s.Ins {
		js.Ins = append(js.Ins, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	for _, r := range s.Outs {
		js.Outs = append(js.Outs, jsonRef{Loc: toJSONLoc(r.Loc), Val: r.Val})
	}
	return js
}

func (s *server) handleRTMInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Summary jsonSummary `json:"summary"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sum, err := req.Summary.summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sum.Len <= 0 {
		http.Error(w, "summary len must be positive", http.StatusBadRequest)
		return
	}
	seen := s.hist.Observe(&sum)
	s.shared.Insert(sum)
	writeJSON(w, map[string]any{"seenBefore": seen, "stored": s.shared.Stored()})
}

// mapState adapts caller-supplied location values to the reuse test.
type mapState map[trace.Loc]uint64

func (m mapState) ReadLoc(l trace.Loc) uint64 { return m[l] }

func (s *server) handleRTMLookup(w http.ResponseWriter, r *http.Request) {
	var req struct {
		PC    uint64    `json:"pc"`
		State []jsonRef `json:"state"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	st := make(mapState, len(req.State))
	for _, ref := range req.State {
		l, err := ref.Loc.loc()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st[l] = ref.Val
	}
	sum, ok := s.shared.Lookup(req.PC, st)
	resp := map[string]any{"hit": ok}
	if ok {
		resp["summary"] = toJSONSummary(sum)
	}
	writeJSON(w, resp)
}

// --- misc ---

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"service":        s.svc.Stats(),
		"rtm":            s.shared.Stats(),
		"rtmStored":      s.shared.Stored(),
		"rtmShards":      s.shared.Shards(),
		"distinctTraces": s.hist.Vectors(),
	})
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"workloads": workload.Names()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tlrserve: write: %v", err)
	}
}
