package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/metrics"
	"github.com/tracereuse/tlr/internal/rtm"
)

// instrumentedServer is testServer with the HTTP middleware wrapped
// around the mux, as main() wires it.
func instrumentedServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := newServer(tlr.BatchOptions{Workers: 2},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	ts := httptest.NewServer(srv.instrument(srv.mux()))
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})
	return ts
}

func scrape(t *testing.T, ts *httptest.Server) []metrics.Sample {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestStatsMatchesMetrics drives traffic through the instrumented
// server and asserts the /v1/stats JSON and the /metrics exposition
// agree — both are views over one registry, so any drift is a wiring
// bug.  It also checks the exposition covers the HTTP, service, trace
// store, and runtime layers.
func TestStatsMatchesMetrics(t *testing.T) {
	ts := instrumentedServer(t)

	// Traffic: two identical runs (one simulated, one cache hit), one
	// 400, one 404 probe.
	for i := 0; i < 2; i++ {
		resp := post(t, ts, "/v1/run", `{"workload": "li", "study": {"budget": 4000, "window": 256}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	if resp := post(t, ts, "/v1/run", `{"not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad run: status %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/traces/sha256:na"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing trace: status %d", resp.StatusCode)
		}
	}

	// /v1/stats (typed through the service section).
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Service tlr.BatchStats       `json:"service"`
		Runtime metrics.RuntimeStats `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Runtime.Goroutines <= 0 || stats.Runtime.HeapAllocBytes == 0 {
		t.Errorf("stats runtime section missing or zero: %+v", stats.Runtime)
	}

	samples := scrape(t, ts)
	get := func(name string, pairs ...string) float64 {
		t.Helper()
		s := metrics.Find(samples, name, pairs...)
		if len(s) != 1 {
			t.Fatalf("metrics: want exactly one %s%v sample, got %d", name, pairs, len(s))
		}
		return s[0].Value
	}

	// Service layer: the scrape happened after the stats read, so
	// counters can only have grown; these were quiescent between the
	// two reads.
	if got := get("tlr_jobs_submitted_total"); got != float64(stats.Service.Submitted) {
		t.Errorf("tlr_jobs_submitted_total = %v, /v1/stats said %d", got, stats.Service.Submitted)
	}
	if got := get("tlr_jobs_ran_total"); got != float64(stats.Service.Ran) {
		t.Errorf("tlr_jobs_ran_total = %v, /v1/stats said %d", got, stats.Service.Ran)
	}
	if got := get("tlr_job_cache_hits_total"); got != float64(stats.Service.CacheHits) {
		t.Errorf("tlr_job_cache_hits_total = %v, /v1/stats said %d", got, stats.Service.CacheHits)
	}
	if stats.Service.Ran < 1 || stats.Service.CacheHits < 1 {
		t.Errorf("traffic did not exercise run+cache: %+v", stats.Service)
	}

	// Per-kind histogram: the study run must have been observed.
	if got := get("tlr_job_duration_seconds_count", "kind", "study"); got != float64(stats.Service.Ran) {
		t.Errorf("study duration count = %v, want %d", got, stats.Service.Ran)
	}

	// HTTP layer: routes labeled by pattern, status by class.
	if got := get("tlr_http_requests_total", "route", "POST /v1/run", "code", "2xx"); got != 2 {
		t.Errorf("run 2xx = %v, want 2", got)
	}
	if got := get("tlr_http_requests_total", "route", "POST /v1/run", "code", "4xx"); got != 1 {
		t.Errorf("run 4xx = %v, want 1", got)
	}
	if got := get("tlr_http_requests_total", "route", "GET /v1/traces/{digest}", "code", "4xx"); got != 1 {
		t.Errorf("trace download 4xx = %v, want 1", got)
	}
	if n := get("tlr_http_request_seconds_count", "route", "POST /v1/run"); n != 3 {
		t.Errorf("run latency observations = %v, want 3", n)
	}

	// Store and runtime layers are present in the exposition.
	for _, name := range []string{"tlr_trace_store_traces", "tlr_results_cached", "go_goroutines", "go_memstats_heap_inuse_bytes"} {
		if len(metrics.Find(samples, name)) == 0 {
			t.Errorf("exposition is missing %s", name)
		}
	}
	if got := get("go_goroutines"); got <= 0 {
		t.Errorf("go_goroutines = %v", got)
	}
}

// TestClusterMetricsExposed checks a clustered server's exposition
// includes the fabric instruments on the same registry.
func TestClusterMetricsExposed(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	samples := scrape(t, nodes[0].ts)
	for _, name := range []string{
		"tlr_cluster_replication_queue_depth",
		"tlr_cluster_replications_queued_total",
		"tlr_cluster_peers_healthy",
		"tlr_cluster_breakers_open",
	} {
		if len(metrics.Find(samples, name)) == 0 {
			t.Errorf("clustered exposition is missing %s", name)
		}
	}
}
