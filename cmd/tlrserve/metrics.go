package main

import (
	"log"
	"net/http"
	"time"

	"github.com/tracereuse/tlr/internal/metrics"
)

// The HTTP-layer instruments: every route served through instrument()
// is counted by route pattern and status class, timed, and tracked
// in-flight.  They live on the batcher's registry, so one GET /metrics
// scrape covers the HTTP, service, store, and cluster layers together.
type httpMetrics struct {
	inflight *metrics.Gauge
	requests *metrics.CounterVec // route, code class
	duration *metrics.HistogramVec
}

// registerMetrics installs the server's HTTP and Go-runtime
// instruments on the batcher's registry.  Called once per server,
// before it takes traffic.
func (s *server) registerMetrics() {
	reg := s.batcher.Metrics()
	s.runtimeC = metrics.RegisterRuntime(reg)
	s.hm.inflight = reg.Gauge("tlr_http_inflight_requests",
		"HTTP requests currently being served.")
	s.hm.requests = reg.CounterVec("tlr_http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"route", "code")
	s.hm.duration = reg.HistogramVec("tlr_http_request_seconds",
		"HTTP request latency, by route pattern.",
		nil, "route")
}

// instrument wraps the server's mux with the per-route middleware.
// The route label is the mux pattern that will serve the request
// (looked up before dispatch — r.Pattern is not visible out here), so
// labels have bounded cardinality no matter what paths clients probe.
func (s *server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "other"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		sw := &statusWriter{ResponseWriter: w}
		s.hm.inflight.Add(1)
		start := time.Now()
		// A plain defer (no recover) still runs when a handler aborts
		// the connection with a panic(http.ErrAbortHandler), so aborted
		// downloads are counted too.
		defer func() {
			s.hm.inflight.Add(-1)
			s.hm.duration.With(route).Observe(time.Since(start).Seconds())
			s.hm.requests.With(route, codeClass(sw.code())).Inc()
		}()
		mux.ServeHTTP(sw, r)
	})
}

// statusWriter records the status code a handler chose.  It forwards
// Flush so the NDJSON batch stream keeps flushing per result.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code reports the recorded status, defaulting to 200 for handlers
// that never wrote (an empty 200 body).
func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func codeClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// handleMetrics serves the Prometheus text exposition for every layer
// (HTTP, service, trace store, cluster fabric, Go runtime) from the
// one registry /v1/stats reads.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.batcher.WriteMetrics(w); err != nil {
		log.Printf("tlrserve: metrics write: %v", err)
	}
}
