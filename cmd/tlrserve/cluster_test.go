package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/cluster"
	"github.com/tracereuse/tlr/internal/rtm"
)

// testGeom is the shared-RTM geometry every in-process cluster node
// uses; restart must rebuild a node with the same one.
var testGeom = rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}

// cnode is one in-process cluster node: a full server (own batcher,
// trace dir, result dir, fabric) listening on a real TCP port.  The
// config and options are kept so restart can rebuild the node on the
// same address and data directory — the self-healing tests kill and
// resurrect nodes mid-test.
type cnode struct {
	url      string
	srv      *server
	ts       *httptest.Server
	traceDir string
	cc       cluster.Config
	opt      tlr.BatchOptions
	closed   bool
}

func (n *cnode) close() {
	if n.closed {
		return
	}
	n.closed = true
	n.ts.Close()
	if n.srv.fabric != nil {
		n.srv.fabric.Close()
	}
	n.srv.batcher.Close()
}

// start builds the node's server and serves it on ln.
func (n *cnode) start(t *testing.T, ln net.Listener) {
	t.Helper()
	cc := n.cc // newClusterServer wires closures into the copy
	srv, err := newClusterServer(n.opt, testGeom, 0, &cc)
	if err != nil {
		t.Fatal(err)
	}
	n.srv = srv
	ts := httptest.NewUnstartedServer(srv.mux())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	n.ts = ts
	n.closed = false
}

// restart closes the node (if still up) and rebuilds it on the same
// address and trace directory, as a crashed-and-relaunched process
// would: stored traces survive, in-memory state does not.
func (n *cnode) restart(t *testing.T) {
	t.Helper()
	n.close()
	var ln net.Listener
	waitFor(t, "address release for restart", func() bool {
		var err error
		ln, err = net.Listen("tcp", strings.TrimPrefix(n.url, "http://"))
		return err == nil
	})
	n.start(t, ln)
}

// startCluster brings up n nodes that all know each other.  Listeners
// are bound before any server is built so every node's -peers list
// can name the full set.  Each mod may adjust a node's cluster config
// and batch options before it starts (fault injection, admission
// budgets, repair intervals).
func startCluster(t *testing.T, n, replication int, mods ...func(i int, cc *cluster.Config, opt *tlr.BatchOptions)) []*cnode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*cnode, n)
	for i := range nodes {
		node := &cnode{
			url:      urls[i],
			traceDir: t.TempDir(),
			cc: cluster.Config{
				Self:        urls[i],
				Peers:       urls,
				Replication: replication,
				Backoff:     time.Millisecond,
				Logf:        t.Logf,
			},
			opt: tlr.BatchOptions{
				Workers:   2,
				TraceDir:  "", // set below: mods see the final value
				ResultDir: t.TempDir(),
			},
		}
		node.opt.TraceDir = node.traceDir
		for _, mod := range mods {
			mod(i, &node.cc, &node.opt)
		}
		node.start(t, listeners[i])
		nodes[i] = node
		t.Cleanup(node.close)
	}
	return nodes
}

func uploadTrace(t *testing.T, url string, rec *tlr.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload to %s: status %d", url, resp.StatusCode)
	}
}

// runDigestStudy posts a digest-referenced study run and decodes the
// result.  extraHeader optionally sets one header (used to suppress
// forwarding and force local execution).
func runDigestStudy(t *testing.T, url, digest string, extraHeader ...string) tlr.Result {
	t.Helper()
	body := fmt.Sprintf(`{"trace": {"digest": %q}, "study": {"budget": 8000, "window": 256}}`, digest)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/run", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for i := 0; i+1 < len(extraHeader); i += 2 {
		req.Header.Set(extraHeader[i], extraHeader[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run on %s: status %d", url, resp.StatusCode)
	}
	var res tlr.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("run on %s: %v", url, res.Err)
	}
	return res
}

func studyJSON(t *testing.T, res tlr.Result) []byte {
	t.Helper()
	if res.Study == nil {
		t.Fatalf("result has no study payload: %+v", res)
	}
	b, err := json.Marshal(res.Study)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// liveStudy computes the baseline: the same study executed live (the
// workload's program on the functional simulator) in this process.
func liveStudy(t *testing.T, workloadName string) []byte {
	t.Helper()
	b := tlr.NewBatcher(tlr.BatchOptions{Workers: 2})
	defer b.Close()
	res, err := b.Run(context.Background(), tlr.Request{
		Workload: workloadName,
		Study:    &tlr.StudyConfig{Budget: 8000, Window: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	return studyJSON(t, res)
}

// TestClusterThreeNodeFabric: a trace uploaded to one node must be
// replayable by digest from every node, byte-identically to live
// execution — via replication on the owners, forwarding from the
// non-owner, and a peer fetch when forwarding is suppressed.
func TestClusterThreeNodeFabric(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	byURL := map[string]*cnode{}
	for _, n := range nodes {
		byURL[n.url] = n
	}

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	digest := rec.Digest()
	want := liveStudy(t, "li")

	// The nodes and the test compute placement from the same ring.
	ring, err := cluster.NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	owners := ring.Owners(digest, 2)
	var nonOwner *cnode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			nonOwner = n
		}
	}

	// Upload to the primary owner; the copy must reach the replica
	// asynchronously, while the non-owner stays empty.
	uploadTrace(t, owners[0], rec)
	if !byURL[owners[0]].srv.batcher.HasTrace(digest) {
		t.Fatal("upload target does not hold the trace")
	}
	waitFor(t, "replication to the second owner", func() bool {
		return byURL[owners[1]].srv.batcher.HasTrace(digest)
	})
	if nonOwner.srv.batcher.HasTrace(digest) {
		t.Fatal("replication placed a copy on a non-owner")
	}

	// Every node answers the digest run identically to live execution.
	for _, n := range nodes {
		res := runDigestStudy(t, n.url, digest)
		if got := studyJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("node %s study differs from live run:\ngot  %s\nwant %s", n.url, got, want)
		}
		if res.Node == "" {
			t.Fatalf("node %s result carries no node label", n.url)
		}
	}

	// The non-owner must have answered by forwarding, not by pulling a
	// copy: digest routing sends the work to the data.
	res := runDigestStudy(t, nonOwner.url, digest)
	if !res.Forwarded {
		t.Fatalf("non-owner result not forwarded: %+v", res)
	}
	if res.Node == nonOwner.url {
		t.Fatalf("forwarded run reports the non-owner as executor")
	}
	if nonOwner.srv.batcher.HasTrace(digest) {
		t.Fatal("forwarded run pulled the trace anyway")
	}

	// Suppressing forwarding forces the pull path: the non-owner must
	// fetch the trace from an owner, cache it, and still answer
	// identically; its stats must show the peer fetch.
	local := runDigestStudy(t, nonOwner.url, digest, cluster.HeaderForwarded, "1")
	if local.Forwarded {
		t.Fatal("suppressed forwarding still forwarded")
	}
	if got := studyJSON(t, local); !bytes.Equal(got, want) {
		t.Fatalf("peer-fetch study differs from live run:\ngot  %s\nwant %s", got, want)
	}
	if !nonOwner.srv.batcher.HasTrace(digest) {
		t.Fatal("peer fetch did not cache the trace locally")
	}
	if st := nonOwner.srv.batcher.Stats(); st.TracePeerFetches != 1 {
		t.Fatalf("TracePeerFetches = %d, want 1", st.TracePeerFetches)
	}
}

// TestClusterSurvivesOwnerDown: with replication factor 2, a digest
// must stay resolvable from any live node after its primary owner
// dies.
func TestClusterSurvivesOwnerDown(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	byURL := map[string]*cnode{}
	for _, n := range nodes {
		byURL[n.url] = n
	}

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "compress", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	digest := rec.Digest()
	want := liveStudy(t, "compress")

	ring, err := cluster.NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	owners := ring.Owners(digest, 2)
	var nonOwner *cnode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			nonOwner = n
		}
	}

	uploadTrace(t, owners[0], rec)
	waitFor(t, "replication to the second owner", func() bool {
		return byURL[owners[1]].srv.batcher.HasTrace(digest)
	})

	// Kill the primary owner.  The non-owner's first forward attempt
	// may chase the corpse; the fallback must pull from the surviving
	// replica and answer correctly.
	byURL[owners[0]].close()
	res := runDigestStudy(t, nonOwner.url, digest)
	if got := studyJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("post-failure study differs from live run:\ngot  %s\nwant %s", got, want)
	}
	// And the surviving owner still answers locally.
	res = runDigestStudy(t, owners[1], digest)
	if got := studyJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("surviving owner study differs from live run:\ngot  %s\nwant %s", got, want)
	}
}

// TestRestartPreservesTracesAndResults: killing and restarting a node
// on the same data directories must preserve both its traces and its
// warm results — the second identical request is a disk-tier result
// cache hit, not a re-simulation.
func TestRestartPreservesTracesAndResults(t *testing.T) {
	traceDir, resultDir := t.TempDir(), t.TempDir()
	opt := tlr.BatchOptions{Workers: 2, TraceDir: traceDir, ResultDir: resultDir}
	geom := rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	digest := rec.Digest()

	srv1 := newServer(opt, geom, 0)
	ts1 := httptest.NewServer(srv1.mux())
	uploadTrace(t, ts1.URL, rec)
	cold := runDigestStudy(t, ts1.URL, digest)
	if st := srv1.batcher.Stats(); st.Ran != 1 || st.ResultDiskWrites != 1 {
		t.Fatalf("cold stats %+v, want one run persisted", st)
	}
	ts1.Close()
	srv1.batcher.Close()

	// Restart on the same directories: the trace and the warm result
	// must both come back.
	srv2 := newServer(opt, geom, 0)
	ts2 := httptest.NewServer(srv2.mux())
	defer func() {
		ts2.Close()
		srv2.batcher.Close()
	}()
	if !srv2.batcher.HasTrace(digest) {
		t.Fatal("restart lost the stored trace")
	}
	warm := runDigestStudy(t, ts2.URL, digest)
	if !warm.Cached {
		t.Fatal("restarted node re-simulated a persisted result")
	}
	if !bytes.Equal(studyJSON(t, cold), studyJSON(t, warm)) {
		t.Fatalf("warm result differs from cold:\ncold %s\nwarm %s",
			studyJSON(t, cold), studyJSON(t, warm))
	}
	st := srv2.batcher.Stats()
	if st.ResultDiskHits != 1 || st.Ran != 0 {
		t.Fatalf("warm stats %+v, want one disk hit and no runs", st)
	}
}
