package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/cluster"
)

// postRepair runs one synchronous repair cycle on a node via the
// operator endpoint and decodes the report.
func postRepair(t *testing.T, url string) cluster.RepairReport {
	t.Helper()
	resp, err := http.Post(url+"/v1/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair on %s: status %d", url, resp.StatusCode)
	}
	var rep cluster.RepairReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRepairConvergenceAfterNodeOutage: traces uploaded while one of
// their owners is dead must reach that owner after it restarts — via
// anti-entropy repair on the surviving owners, not late replication
// (retries are exhausted and drained before the restart).  Every
// backfilled copy must replay byte-identically to live execution: the
// receiving node re-validates and re-digests the stream before
// trusting it.
func TestRepairConvergenceAfterNodeOutage(t *testing.T) {
	nodes := startCluster(t, 3, 2, func(i int, cc *cluster.Config, opt *tlr.BatchOptions) {
		cc.Retries = 1 // one failed delivery, then the digest is repair's problem
		cc.BreakerCooldown = time.Millisecond
	})
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	byURL := map[string]*cnode{}
	for _, n := range nodes {
		byURL[n.url] = n
	}
	ring, err := cluster.NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	dead := nodes[2]
	want := liveStudy(t, "li")

	// Record distinct traces (budget varies the stream, hence the
	// digest) until the soon-to-die node owns two of them.
	type victim struct {
		rec       *tlr.Trace
		digest    string
		liveOwner string
	}
	var victims []victim
	for b := uint64(10_000); len(victims) < 2 && b < 10_320; b += 16 {
		rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		d := rec.Digest()
		owners := ring.Owners(d, 2)
		for _, o := range owners {
			if o == dead.url {
				other := owners[0]
				if other == dead.url {
					other = owners[1]
				}
				victims = append(victims, victim{rec: rec, digest: d, liveOwner: other})
			}
		}
	}
	if len(victims) < 2 {
		t.Fatalf("no budget variation made %s an owner twice", dead.url)
	}

	// Kill the node, then upload to each digest's surviving owner: the
	// dead owner's copy cannot be delivered, leaving a hint behind.
	dead.close()
	for _, v := range victims {
		uploadTrace(t, v.liveOwner, v.rec)
	}
	for _, n := range nodes[:2] {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := n.srv.fabric.Drain(ctx)
		cancel()
		if err != nil {
			t.Fatalf("drain on %s: %v", n.url, err)
		}
	}

	dead.restart(t)
	for _, v := range victims {
		if dead.srv.batcher.HasTrace(v.digest) {
			t.Fatal("restarted node already holds a victim digest; repair has nothing to prove")
		}
	}

	// One repair cycle per surviving node must restore full
	// replication.
	backfilled := 0
	for _, n := range nodes[:2] {
		rep := postRepair(t, n.url)
		backfilled += rep.Backfilled
		if rep.Failed != 0 {
			t.Fatalf("repair on %s: %d failed backfills", n.url, rep.Failed)
		}
	}
	if backfilled != len(victims) {
		t.Fatalf("repair backfilled %d copies, want %d", backfilled, len(victims))
	}
	for _, v := range victims {
		for _, o := range ring.Owners(v.digest, 2) {
			if !byURL[o].srv.batcher.HasTrace(v.digest) {
				t.Fatalf("owner %s still missing %s after repair", o, v.digest)
			}
		}
		res := runDigestStudy(t, dead.url, v.digest)
		if got := studyJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("backfilled replay differs from live run:\ngot  %s\nwant %s", got, want)
		}
	}
	// The successful backfills must also have cleared the hints the
	// failed replications left behind.
	for _, n := range nodes[:2] {
		if p := n.srv.fabric.HintsPending(); p != 0 {
			t.Fatalf("%d hints pending on %s after repair, want 0", p, n.url)
		}
	}
}

// TestChaosDropsConvergeViaRepair: with every peer request delayed and
// 30% of them dropped, the periodic repair loop must still drive the
// cluster to full replication — no manual intervention, no lost
// digests.
func TestChaosDropsConvergeViaRepair(t *testing.T) {
	nodes := startCluster(t, 3, 2, func(i int, cc *cluster.Config, opt *tlr.BatchOptions) {
		inj := cluster.NewInjector(nil)
		inj.Add(&cluster.InjectRule{Delay: time.Millisecond})
		inj.Add(&cluster.InjectRule{Prob: 0.3, Drop: true})
		cc.Client = &http.Client{Transport: inj}
		cc.Retries = 2
		cc.BreakerCooldown = time.Millisecond
		cc.RepairEvery = 25 * time.Millisecond
	})
	byURL := map[string]*cnode{}
	for _, n := range nodes {
		byURL[n.url] = n
	}
	ring, err := cluster.NewRing([]string{nodes[0].url, nodes[1].url, nodes[2].url})
	if err != nil {
		t.Fatal(err)
	}

	var digests []string
	for i, b := range []uint64{10_000, 10_016, 10_032} {
		rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, rec.Digest())
		uploadTrace(t, nodes[i%3].url, rec)
	}
	waitFor(t, "full replication under 30% request drop", func() bool {
		for _, d := range digests {
			for _, o := range ring.Owners(d, 2) {
				if !byURL[o].srv.batcher.HasTrace(d) {
					return false
				}
			}
		}
		return true
	})
}

// TestOverloadShedsWith429: beyond the -max-inflight budget,
// simulation-bearing requests must be refused immediately with 429 and
// a Retry-After — bounded load, fast refusal — and admitted again once
// capacity frees up.  A batch charges its full job count.
func TestOverloadShedsWith429(t *testing.T) {
	srv := newServer(tlr.BatchOptions{Workers: 2, MaxInflight: 2}, testGeom, 0)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})
	runBody := `{"workload": "li", "study": {"budget": 4000, "window": 256}}`
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Occupy the whole budget by hand, as two long-running jobs would.
	release, err := srv.batcher.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	resp := post("/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded run status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if resp := post("/v1/batch", `{"jobs": [`+runBody+`]}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded batch status = %d, want 429", resp.StatusCode)
	}

	// Capacity back: the same run is admitted and completes.
	release()
	if resp := post("/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release run status = %d, want 200", resp.StatusCode)
	}

	// A batch wider than the whole budget is refused even on an idle
	// server: it could never be admitted, so failing fast beats hanging.
	big := `{"jobs": [` + runBody + `, ` + runBody + `, ` + runBody + `]}`
	if resp := post("/v1/batch", big); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch status = %d, want 429", resp.StatusCode)
	}

	var stats struct {
		Admission struct {
			MaxInflight int    `json:"maxInflight"`
			Shed        uint64 `json:"shed"`
		} `json:"admission"`
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.MaxInflight != 2 || stats.Admission.Shed != 3 {
		t.Fatalf("admission stats = %+v, want maxInflight 2 and 3 sheds", stats.Admission)
	}
}
