package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/rtm"
	"github.com/tracereuse/tlr/internal/tracefile"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := newServer(tlr.BatchOptions{Workers: 2},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRunAllFourKinds drives POST /v1/run once per simulation kind and
// checks each answer carries the matching typed payload.
func TestRunAllFourKinds(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		check      func(r tlr.Result) bool
	}{
		{"study", `{"workload": "li", "study": {"budget": 8000, "window": 256}}`,
			func(r tlr.Result) bool { return r.Study != nil && r.Study.ILR.Instructions == 8000 }},
		{"rtm", `{"workload": "li", "kind": "rtm",
			"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "ILR EXP"},
			"skip": 500, "budget": 8000}`,
			func(r tlr.Result) bool { return r.RTM != nil && r.RTM.Total() >= 8000 }},
		{"pipeline", `{"workload": "li",
			"pipeline": {"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "IEXP", "n": 4}},
			"budget": 8000}`,
			func(r tlr.Result) bool { return r.Pipeline != nil && r.Pipeline.Retired >= 8000 }},
		{"vp", `{"workload": "li", "vp": {"window": 256}, "budget": 8000}`,
			func(r tlr.Result) bool { return r.VP != nil && r.VP.Instructions == 8000 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, "/v1/run", c.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var res tlr.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("result error: %v", res.Err)
			}
			if string(res.Kind) != c.name {
				t.Fatalf("kind = %q, want %q", res.Kind, c.name)
			}
			if !c.check(res) {
				t.Fatalf("payload check failed: %+v", res)
			}
		})
	}
}

// TestRunRejectsMalformedRequests: validation failures are a 400, not a
// result with an error.
func TestRunRejectsMalformedRequests(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"workload": "li"}`,                                                                                  // no configuration
		`{"vp": {"window": 1}, "budget": 100}`,                                                                // no program
		`{"workload": "nope", "vp": {"window": 1}, "budget": 100}`,                                            // unknown workload
		`{"workload": "li", "vp": {"window": 1}}`,                                                             // no budget
		`{"workload": "li", "kind": "study", "vp": {"window": 1}}`,                                            // kind/config mismatch
		`{"v": 99, "workload": "li", "vp": {}, "budget": 100}`,                                                // future wire version
		`{"workload": "li", "rtm": {"geometry": {"sets": 63, "pcWays": 1, "tracesPerPC": 1}}, "budget": 100}`, // bad geometry
	} {
		resp := post(t, ts, "/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBatchStreamsAllKindsAndCaches submits a mixed four-kind batch
// twice: the first pass simulates, the second is answered entirely from
// cache with identical payloads — including the two new kinds.
func TestBatchStreamsAllKindsAndCaches(t *testing.T) {
	ts := testServer(t)
	const body = `{"jobs": [
		{"id": "s", "workload": "li", "study": {"budget": 6000, "window": 256}},
		{"id": "r", "workload": "li", "rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}}, "budget": 6000},
		{"id": "p", "workload": "li", "pipeline": {}, "budget": 6000},
		{"id": "v", "workload": "li", "vp": {"window": 256}, "budget": 6000}
	]}`
	read := func() map[string]tlr.Result {
		resp := post(t, ts, "/v1/batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		out := map[string]tlr.Result{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var r tlr.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad line %q: %v", sc.Text(), err)
			}
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.ID, r.Err)
			}
			out[r.ID] = r
		}
		if len(out) != 4 {
			t.Fatalf("got %d results, want 4", len(out))
		}
		return out
	}
	cold := read()
	warm := read()
	for id, w := range warm {
		if !w.Cached {
			t.Errorf("job %s not cached on second pass", id)
		}
	}
	if cold["p"].Pipeline.IPC() != warm["p"].Pipeline.IPC() {
		t.Error("cached pipeline result differs")
	}
	if cold["v"].VP.Speedup != warm["v"].VP.Speedup {
		t.Error("cached vp result differs")
	}

	// The pre-Request wire spelling (kind + tlrConst) still decodes.
	legacy := `{"jobs": [{"id": "lg", "workload": "li", "kind": "study",
		"study": {"budget": 6000, "window": 256, "tlrConst": [1]}}]}`
	resp := post(t, ts, "/v1/batch", legacy)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var r tlr.Result
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil || r.Err != nil {
		t.Fatalf("legacy batch line %q: %v %v", buf.String(), err, r.Err)
	}
	if !r.Cached || r.Study == nil {
		t.Errorf("legacy spelling should hit the cache of the equivalent new-form job: %+v", r)
	}
}

// TestStatsAndWorkloads smoke-tests the read-only endpoints.
func TestStatsAndWorkloads(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Service tlr.BatchStats `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var wl struct {
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) != 14 {
		t.Errorf("workloads = %d, want 14", len(wl.Workloads))
	}
}

// TestTraceUploadAndDigestRun is the record -> upload -> digest-sweep
// workflow end to end: a trace recorded from a workload is uploaded
// once, referenced by digest for a study run, and the answer must be
// cache-shared with (and identical to) the same request naming the
// workload — including a trace-driven RTM replay.
func TestTraceUploadAndDigestRun(t *testing.T) {
	ts := testServer(t)

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var up struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Digest != rec.Digest() || up.Records != rec.Records() {
		t.Fatalf("upload answered %+v, want %s/%d", up, rec.Digest(), rec.Records())
	}

	// GET /v1/traces lists it.
	lresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []struct {
			Digest string `json:"digest"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].Digest != up.Digest {
		t.Fatalf("listing %+v", listing)
	}

	decode := func(resp *http.Response) tlr.Result {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var r tlr.Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r
	}

	study := `"study": {"budget": 10000, "window": 256}`
	byTrace := decode(post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, `+study+`}`))
	byName := decode(post(t, ts, "/v1/run", `{"workload": "li", `+study+`}`))
	if !reflect.DeepEqual(byTrace.Study, byName.Study) {
		t.Errorf("digest-referenced study differs from workload-backed:\n%+v\n%+v", byTrace.Study, byName.Study)
	}

	// Trace-driven RTM replay through the same store.
	rtmBody := `"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "IEXP", "n": 4}, "budget": 10000`
	rtmByTrace := decode(post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, `+rtmBody+`}`))
	rtmByName := decode(post(t, ts, "/v1/run", `{"workload": "li", `+rtmBody+`}`))
	if !reflect.DeepEqual(rtmByTrace.RTM, rtmByName.RTM) {
		t.Errorf("digest-referenced rtm differs from workload-backed:\n%+v\n%+v", rtmByTrace.RTM, rtmByName.RTM)
	}

	// Unknown digests and pipeline-with-trace are 400s.
	if resp := post(t, ts, "/v1/run", `{"trace": {"digest": "sha256:nope"}, `+study+`}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown digest: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, "pipeline": {}, "budget": 1000}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pipeline+trace: status %d", resp.StatusCode)
	}

	// Garbage uploads are rejected by the hardened parser.
	gresp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", strings.NewReader("NOTATRACE"))
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d", gresp.StatusCode)
	}
}

// TestTraceDownloadRoundTrip covers the fetch-a-recording-made-elsewhere
// workflow end to end over httptest: upload a recording, download it by
// digest, and verify the returned file is a valid trace whose content
// digest, record count and replay results match the original exactly.
func TestTraceDownloadRoundTrip(t *testing.T) {
	ts := testServer(t)

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "compress", Budget: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	var up bytes.Buffer
	if _, err := rec.WriteTo(&up); err != nil {
		t.Fatal(err)
	}
	presp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", &up)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", presp.StatusCode)
	}

	// Download by digest.
	dresp, err := http.Get(ts.URL + "/v1/traces/" + rec.Digest())
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("download status %d", dresp.StatusCode)
	}
	if ct := dresp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("download content type %q", ct)
	}
	data, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Version() != tracefile.Version4 {
		t.Errorf("download carries container v%d, want v%d", fr.Version(), tracefile.Version4)
	}
	got, err := tlr.ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("downloaded file does not validate: %v", err)
	}
	if got.Digest() != rec.Digest() || got.Records() != rec.Records() {
		t.Fatalf("download is %s/%d records, want %s/%d",
			got.Digest(), got.Records(), rec.Digest(), rec.Records())
	}

	// The pulled file replays to the same results as the original
	// recording (the point of fetching it onto another host).
	req := tlr.Request{Study: &tlr.StudyConfig{Budget: 8_000, Window: 128}}
	orig, err := tlr.Replay(context.Background(), rec, req)
	if err != nil {
		t.Fatal(err)
	}
	pulled, err := tlr.Replay(context.Background(), got, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Study, pulled.Study) {
		t.Errorf("pulled trace replays differently:\n%+v\n%+v", orig.Study, pulled.Study)
	}

	// Unknown digests are a 404, and the store listing reports both the
	// held (v3) and canonical sizes.
	nresp, err := http.Get(ts.URL + "/v1/traces/sha256:nope")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest download: status %d", nresp.StatusCode)
	}
	lresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []struct {
			Digest         string `json:"digest"`
			Bytes          int    `json:"bytes"`
			CanonicalBytes int    `json:"canonicalBytes"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].CanonicalBytes <= listing.Traces[0].Bytes {
		t.Errorf("listing sizes %+v: canonical should exceed the held v3 bytes", listing.Traces)
	}
}

// TestPprofFlagMounts checks that the profiling endpoints answer when
// mounted (the -pprof flag) and are absent by default.
func TestPprofFlagMounts(t *testing.T) {
	srv := newServer(tlr.BatchOptions{Workers: 1},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	defer srv.batcher.Close()
	mux := srv.mux()
	mountPprof(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", resp.StatusCode)
	}

	plain := testServer(t)
	presp, err := http.Get(plain.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}

// TestChunkedUploadToDiskTier drives the disk-tier upload path over
// real HTTP: the body is sent with chunked transfer encoding (no
// Content-Length), spools into the -trace-dir store without being
// materialised, and a digest-referenced run replays it identically to
// live execution.  The listing and stats report per-tier occupancy.
func TestChunkedUploadToDiskTier(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(tlr.BatchOptions{Workers: 2, TraceStoreBytes: 4096, TraceDir: dir},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "compress", Budget: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	// An io.Pipe body has no declared length, so net/http sends it
	// chunked — the long-recording upload shape.
	pr, pw := io.Pipe()
	go func() {
		_, err := rec.WriteTo(pw)
		pw.CloseWithError(err)
	}()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("chunked upload status %d: %s", resp.StatusCode, body)
	}
	var up struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
		Tier    string `json:"tier"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Digest != rec.Digest() || up.Records != rec.Records() || up.Tier != "disk" {
		t.Fatalf("upload answered %+v, want %s/%d on disk", up, rec.Digest(), rec.Records())
	}

	// The digest-named file exists in the store directory.
	if _, err := os.Stat(filepath.Join(dir, tracefile.DigestFileName(up.Digest))); err != nil {
		t.Fatalf("spooled file missing: %v", err)
	}

	// Digest-referenced replay from the disk tier equals live execution.
	decode := func(resp *http.Response) tlr.Result {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var r tlr.Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r
	}
	study := `"study": {"budget": 20000, "window": 256}`
	byTrace := decode(post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, `+study+`}`))
	byName := decode(post(t, ts, "/v1/run", `{"workload": "compress", `+study+`}`))
	if !reflect.DeepEqual(byTrace.Study, byName.Study) {
		t.Errorf("disk-tier replay differs from live:\n%+v\n%+v", byTrace.Study, byName.Study)
	}

	// The listing reports the tier split; the stats report the tier
	// counters.
	lresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []struct {
			Digest    string `json:"digest"`
			Tier      string `json:"tier"`
			DiskBytes int64  `json:"diskBytes"`
		} `json:"traces"`
		Tiers struct {
			Disk struct {
				Traces int   `json:"traces"`
				Bytes  int64 `json:"bytes"`
			} `json:"disk"`
		} `json:"tiers"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].Tier != "disk" || listing.Traces[0].DiskBytes == 0 {
		t.Fatalf("listing %+v", listing)
	}
	if listing.Tiers.Disk.Traces != 1 || listing.Tiers.Disk.Bytes == 0 {
		t.Fatalf("tier occupancy %+v", listing.Tiers)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		TraceStore struct {
			Disk struct {
				Traces int `json:"traces"`
			} `json:"disk"`
			Spills uint64 `json:"spills"`
		} `json:"traceStore"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.TraceStore.Disk.Traces != 1 || stats.TraceStore.Spills != 1 {
		t.Fatalf("stats %+v", stats.TraceStore)
	}

	// The download streams the disk tier's file byte for byte.
	dresp, err := http.Get(ts.URL + "/v1/traces/" + up.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	got, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, tracefile.DigestFileName(up.Digest)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("download differs from the stored file")
	}
}
