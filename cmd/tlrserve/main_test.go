package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/rtm"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := newServer(tlr.BatchOptions{Workers: 2},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRunAllFourKinds drives POST /v1/run once per simulation kind and
// checks each answer carries the matching typed payload.
func TestRunAllFourKinds(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		check      func(r tlr.Result) bool
	}{
		{"study", `{"workload": "li", "study": {"budget": 8000, "window": 256}}`,
			func(r tlr.Result) bool { return r.Study != nil && r.Study.ILR.Instructions == 8000 }},
		{"rtm", `{"workload": "li", "kind": "rtm",
			"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "ILR EXP"},
			"skip": 500, "budget": 8000}`,
			func(r tlr.Result) bool { return r.RTM != nil && r.RTM.Total() >= 8000 }},
		{"pipeline", `{"workload": "li",
			"pipeline": {"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "IEXP", "n": 4}},
			"budget": 8000}`,
			func(r tlr.Result) bool { return r.Pipeline != nil && r.Pipeline.Retired >= 8000 }},
		{"vp", `{"workload": "li", "vp": {"window": 256}, "budget": 8000}`,
			func(r tlr.Result) bool { return r.VP != nil && r.VP.Instructions == 8000 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, "/v1/run", c.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var res tlr.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("result error: %v", res.Err)
			}
			if string(res.Kind) != c.name {
				t.Fatalf("kind = %q, want %q", res.Kind, c.name)
			}
			if !c.check(res) {
				t.Fatalf("payload check failed: %+v", res)
			}
		})
	}
}

// TestRunRejectsMalformedRequests: validation failures are a 400, not a
// result with an error.
func TestRunRejectsMalformedRequests(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"workload": "li"}`,                                                                                  // no configuration
		`{"vp": {"window": 1}, "budget": 100}`,                                                                // no program
		`{"workload": "nope", "vp": {"window": 1}, "budget": 100}`,                                            // unknown workload
		`{"workload": "li", "vp": {"window": 1}}`,                                                             // no budget
		`{"workload": "li", "kind": "study", "vp": {"window": 1}}`,                                            // kind/config mismatch
		`{"v": 99, "workload": "li", "vp": {}, "budget": 100}`,                                                // future wire version
		`{"workload": "li", "rtm": {"geometry": {"sets": 63, "pcWays": 1, "tracesPerPC": 1}}, "budget": 100}`, // bad geometry
	} {
		resp := post(t, ts, "/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBatchStreamsAllKindsAndCaches submits a mixed four-kind batch
// twice: the first pass simulates, the second is answered entirely from
// cache with identical payloads — including the two new kinds.
func TestBatchStreamsAllKindsAndCaches(t *testing.T) {
	ts := testServer(t)
	const body = `{"jobs": [
		{"id": "s", "workload": "li", "study": {"budget": 6000, "window": 256}},
		{"id": "r", "workload": "li", "rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}}, "budget": 6000},
		{"id": "p", "workload": "li", "pipeline": {}, "budget": 6000},
		{"id": "v", "workload": "li", "vp": {"window": 256}, "budget": 6000}
	]}`
	read := func() map[string]tlr.Result {
		resp := post(t, ts, "/v1/batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		out := map[string]tlr.Result{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var r tlr.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad line %q: %v", sc.Text(), err)
			}
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.ID, r.Err)
			}
			out[r.ID] = r
		}
		if len(out) != 4 {
			t.Fatalf("got %d results, want 4", len(out))
		}
		return out
	}
	cold := read()
	warm := read()
	for id, w := range warm {
		if !w.Cached {
			t.Errorf("job %s not cached on second pass", id)
		}
	}
	if cold["p"].Pipeline.IPC() != warm["p"].Pipeline.IPC() {
		t.Error("cached pipeline result differs")
	}
	if cold["v"].VP.Speedup != warm["v"].VP.Speedup {
		t.Error("cached vp result differs")
	}

	// The pre-Request wire spelling (kind + tlrConst) still decodes.
	legacy := `{"jobs": [{"id": "lg", "workload": "li", "kind": "study",
		"study": {"budget": 6000, "window": 256, "tlrConst": [1]}}]}`
	resp := post(t, ts, "/v1/batch", legacy)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var r tlr.Result
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil || r.Err != nil {
		t.Fatalf("legacy batch line %q: %v %v", buf.String(), err, r.Err)
	}
	if !r.Cached || r.Study == nil {
		t.Errorf("legacy spelling should hit the cache of the equivalent new-form job: %+v", r)
	}
}

// TestStatsAndWorkloads smoke-tests the read-only endpoints.
func TestStatsAndWorkloads(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Service tlr.BatchStats `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var wl struct {
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) != 14 {
		t.Errorf("workloads = %d, want 14", len(wl.Workloads))
	}
}

// TestTraceUploadAndDigestRun is the record -> upload -> digest-sweep
// workflow end to end: a trace recorded from a workload is uploaded
// once, referenced by digest for a study run, and the answer must be
// cache-shared with (and identical to) the same request naming the
// workload — including a trace-driven RTM replay.
func TestTraceUploadAndDigestRun(t *testing.T) {
	ts := testServer(t)

	rec, err := tlr.Record(context.Background(), tlr.RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var up struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Digest != rec.Digest() || up.Records != rec.Records() {
		t.Fatalf("upload answered %+v, want %s/%d", up, rec.Digest(), rec.Records())
	}

	// GET /v1/traces lists it.
	lresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []struct {
			Digest string `json:"digest"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].Digest != up.Digest {
		t.Fatalf("listing %+v", listing)
	}

	decode := func(resp *http.Response) tlr.Result {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var r tlr.Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r
	}

	study := `"study": {"budget": 10000, "window": 256}`
	byTrace := decode(post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, `+study+`}`))
	byName := decode(post(t, ts, "/v1/run", `{"workload": "li", `+study+`}`))
	if !reflect.DeepEqual(byTrace.Study, byName.Study) {
		t.Errorf("digest-referenced study differs from workload-backed:\n%+v\n%+v", byTrace.Study, byName.Study)
	}

	// Trace-driven RTM replay through the same store.
	rtmBody := `"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "IEXP", "n": 4}, "budget": 10000`
	rtmByTrace := decode(post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, `+rtmBody+`}`))
	rtmByName := decode(post(t, ts, "/v1/run", `{"workload": "li", `+rtmBody+`}`))
	if !reflect.DeepEqual(rtmByTrace.RTM, rtmByName.RTM) {
		t.Errorf("digest-referenced rtm differs from workload-backed:\n%+v\n%+v", rtmByTrace.RTM, rtmByName.RTM)
	}

	// Unknown digests and pipeline-with-trace are 400s.
	if resp := post(t, ts, "/v1/run", `{"trace": {"digest": "sha256:nope"}, `+study+`}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown digest: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/v1/run", `{"trace": {"digest": "`+up.Digest+`"}, "pipeline": {}, "budget": 1000}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pipeline+trace: status %d", resp.StatusCode)
	}

	// Garbage uploads are rejected by the hardened parser.
	gresp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", strings.NewReader("NOTATRACE"))
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d", gresp.StatusCode)
	}
}
