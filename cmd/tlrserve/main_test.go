package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/rtm"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := newServer(tlr.BatchOptions{Workers: 2},
		rtm.Geometry{Sets: 64, PCWays: 4, TracesPerPC: 4}, 0)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.batcher.Close()
	})
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRunAllFourKinds drives POST /v1/run once per simulation kind and
// checks each answer carries the matching typed payload.
func TestRunAllFourKinds(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		check      func(r tlr.Result) bool
	}{
		{"study", `{"workload": "li", "study": {"budget": 8000, "window": 256}}`,
			func(r tlr.Result) bool { return r.Study != nil && r.Study.ILR.Instructions == 8000 }},
		{"rtm", `{"workload": "li", "kind": "rtm",
			"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "ILR EXP"},
			"skip": 500, "budget": 8000}`,
			func(r tlr.Result) bool { return r.RTM != nil && r.RTM.Total() >= 8000 }},
		{"pipeline", `{"workload": "li",
			"pipeline": {"rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}, "heuristic": "IEXP", "n": 4}},
			"budget": 8000}`,
			func(r tlr.Result) bool { return r.Pipeline != nil && r.Pipeline.Retired >= 8000 }},
		{"vp", `{"workload": "li", "vp": {"window": 256}, "budget": 8000}`,
			func(r tlr.Result) bool { return r.VP != nil && r.VP.Instructions == 8000 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := post(t, ts, "/v1/run", c.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var res tlr.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("result error: %v", res.Err)
			}
			if string(res.Kind) != c.name {
				t.Fatalf("kind = %q, want %q", res.Kind, c.name)
			}
			if !c.check(res) {
				t.Fatalf("payload check failed: %+v", res)
			}
		})
	}
}

// TestRunRejectsMalformedRequests: validation failures are a 400, not a
// result with an error.
func TestRunRejectsMalformedRequests(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"workload": "li"}`,                                                                                  // no configuration
		`{"vp": {"window": 1}, "budget": 100}`,                                                                // no program
		`{"workload": "nope", "vp": {"window": 1}, "budget": 100}`,                                            // unknown workload
		`{"workload": "li", "vp": {"window": 1}}`,                                                             // no budget
		`{"workload": "li", "kind": "study", "vp": {"window": 1}}`,                                            // kind/config mismatch
		`{"v": 99, "workload": "li", "vp": {}, "budget": 100}`,                                                // future wire version
		`{"workload": "li", "rtm": {"geometry": {"sets": 63, "pcWays": 1, "tracesPerPC": 1}}, "budget": 100}`, // bad geometry
	} {
		resp := post(t, ts, "/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBatchStreamsAllKindsAndCaches submits a mixed four-kind batch
// twice: the first pass simulates, the second is answered entirely from
// cache with identical payloads — including the two new kinds.
func TestBatchStreamsAllKindsAndCaches(t *testing.T) {
	ts := testServer(t)
	const body = `{"jobs": [
		{"id": "s", "workload": "li", "study": {"budget": 6000, "window": 256}},
		{"id": "r", "workload": "li", "rtm": {"geometry": {"sets": 64, "pcWays": 4, "tracesPerPC": 4}}, "budget": 6000},
		{"id": "p", "workload": "li", "pipeline": {}, "budget": 6000},
		{"id": "v", "workload": "li", "vp": {"window": 256}, "budget": 6000}
	]}`
	read := func() map[string]tlr.Result {
		resp := post(t, ts, "/v1/batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		out := map[string]tlr.Result{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var r tlr.Result
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("bad line %q: %v", sc.Text(), err)
			}
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.ID, r.Err)
			}
			out[r.ID] = r
		}
		if len(out) != 4 {
			t.Fatalf("got %d results, want 4", len(out))
		}
		return out
	}
	cold := read()
	warm := read()
	for id, w := range warm {
		if !w.Cached {
			t.Errorf("job %s not cached on second pass", id)
		}
	}
	if cold["p"].Pipeline.IPC() != warm["p"].Pipeline.IPC() {
		t.Error("cached pipeline result differs")
	}
	if cold["v"].VP.Speedup != warm["v"].VP.Speedup {
		t.Error("cached vp result differs")
	}

	// The pre-Request wire spelling (kind + tlrConst) still decodes.
	legacy := `{"jobs": [{"id": "lg", "workload": "li", "kind": "study",
		"study": {"budget": 6000, "window": 256, "tlrConst": [1]}}]}`
	resp := post(t, ts, "/v1/batch", legacy)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var r tlr.Result
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil || r.Err != nil {
		t.Fatalf("legacy batch line %q: %v %v", buf.String(), err, r.Err)
	}
	if !r.Cached || r.Study == nil {
		t.Errorf("legacy spelling should hit the cache of the equivalent new-form job: %+v", r)
	}
}

// TestStatsAndWorkloads smoke-tests the read-only endpoints.
func TestStatsAndWorkloads(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Service tlr.BatchStats `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var wl struct {
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) != 14 {
		t.Errorf("workloads = %d, want 14", len(wl.Workloads))
	}
}
