package main

import (
	"context"
	"testing"
	"time"

	"github.com/tracereuse/tlr/internal/loadgen"
)

// TestLoadgenEndToEnd drives the instrumented server with a short
// mixed workload through the real load generator — the same path the
// CI sustained-traffic smoke uses, scaled down.  It is the
// closed-loop e2e check that the generator's client side, the server's
// handlers, and the /metrics scrape loop all compose.
func TestLoadgenEndToEnd(t *testing.T) {
	ts := instrumentedServer(t)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Server:         ts.URL,
		Duration:       600 * time.Millisecond,
		Workers:        3,
		Distinct:       3,
		Budget:         4000,
		ScrapeInterval: 100 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests == 0 {
		t.Fatal("load run issued no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("load run saw %d client errors", rep.Errors)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputRPS)
	}
	for kind, k := range rep.Kinds {
		if k.Requests == 0 {
			continue
		}
		if k.P50Ms <= 0 || k.P99Ms < k.P50Ms {
			t.Errorf("%s latencies implausible: %+v", kind, k)
		}
	}
	// The default mix is run-heavy; a 600ms closed loop always lands
	// at least a few of them.
	if rep.Kinds["run"].Requests == 0 {
		t.Errorf("mix issued no run requests: %+v", rep.Kinds)
	}

	s := rep.Scrape
	if s == nil || s.Scrapes < 2 {
		t.Fatalf("scrape loop barely ran: %+v", s)
	}
	if s.ScrapeErrors != 0 {
		t.Errorf("%d scrapes failed", s.ScrapeErrors)
	}
	if s.GoroutinesMax <= 0 || s.HeapInuseMaxBytes <= 0 {
		t.Errorf("scrape ceilings empty: %+v", s)
	}
	if s.HTTP5xx != 0 {
		t.Errorf("server counted %.0f 5xx responses", s.HTTP5xx)
	}

	// The CI smoke's gate set, scaled to test leniency, must pass on a
	// healthy run.
	gates := loadgen.Gates{MaxP99Ms: 30_000, Max5xx: 0, MaxGoroutines: 10_000, MaxHeapGrowth: 100}
	if bad := gates.Check(rep); len(bad) > 0 {
		t.Errorf("gates failed on a healthy run: %v", bad)
	}
}

// TestLoadgenOpenLoop checks the paced mode issues roughly the offered
// schedule and reports mode=open.
func TestLoadgenOpenLoop(t *testing.T) {
	ts := instrumentedServer(t)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Server:         ts.URL,
		Duration:       500 * time.Millisecond,
		Workers:        2,
		Rate:           40, // ~20 requests in the window
		Distinct:       2,
		Budget:         4000,
		Mix:            loadgen.Mix{Run: 1},
		ScrapeInterval: 200 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	// The pacer bounds offered load: with fast local handling the
	// completed count cannot meaningfully exceed rate*duration.
	if max := uint64(40); rep.Requests > max {
		t.Errorf("open loop issued %d requests, offered schedule caps at ~20 (hard cap %d)", rep.Requests, max)
	}
}
