// Command tlrsim runs one workload (or an assembly file) under a chosen
// reuse configuration and prints its metrics.
//
// Usage:
//
//	tlrsim -w hydro2d                                 # limit study
//	tlrsim -w compress -window 256 -lat 1,2,3,4       # latency sweep
//	tlrsim -w ijpeg -rtm 4k -heuristic i4             # realistic RTM
//	tlrsim -w turb3d -rtm 256k -heuristic ilrne -pipe # execution-driven pipeline
//	tlrsim -w li -vp -window 256                      # value-prediction limit
//	tlrsim -f prog.s -budget 100000                   # your own program
//	tlrsim -list                                      # show the suite
//
// Every mode is one tlr.Run request; the four configurations map onto
// the four simulation kinds of the public API.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tracereuse/tlr"
)

// run executes one request on the shared batcher, failing the command
// on any error.
func run(req tlr.Request) tlr.Result {
	res, err := tlr.Run(context.Background(), req)
	if err != nil {
		fail(err)
	}
	return res
}

func main() {
	var (
		wname     = flag.String("w", "", "workload name (see -list)")
		file      = flag.String("f", "", "assembly source file to run instead of a workload")
		budget    = flag.Uint64("budget", 300_000, "dynamic instructions to measure")
		skip      = flag.Uint64("skip", 2_000, "instructions to skip first")
		window    = flag.Int("window", 0, "instruction window size (0 = infinite)")
		lats      = flag.String("lat", "1", "comma-separated ILR reuse latencies")
		propK     = flag.Float64("k", 0, "TLR proportional latency K (0 = constant 1-cycle)")
		rtmSize   = flag.String("rtm", "", "run a realistic RTM instead: 512, 4k, 32k or 256k")
		heuristic = flag.String("heuristic", "i4", "RTM heuristic: ilrne, ilrexp, or iN (e.g. i4)")
		strict    = flag.Bool("strict", false, "strict trace-identity reuse (ablation)")
		pipe      = flag.Bool("pipe", false, "with -rtm: run the execution-driven pipeline model instead")
		vp        = flag.Bool("vp", false, "run the value-prediction limit study instead")
		list      = flag.Bool("list", false, "list the workload suite and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range tlr.Workloads() {
			fmt.Printf("%-9s %-4s %s\n", w.Name, w.Category, w.Description)
		}
		return
	}

	prog, name, err := loadProgram(*wname, *file)
	if err != nil {
		fail(err)
	}

	if *vp {
		runVP(prog, name, *window, *skip, *budget)
		return
	}
	if *rtmSize != "" {
		runRTM(prog, name, *rtmSize, *heuristic, *skip, *budget, *pipe)
		return
	}

	cfg := tlr.StudyConfig{
		Budget: *budget,
		Skip:   *skip,
		Window: *window,
		Strict: *strict,
	}
	for _, s := range strings.Split(*lats, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fail(fmt.Errorf("bad -lat %q: %v", s, err))
		}
		cfg.ILRLatencies = append(cfg.ILRLatencies, v)
	}
	if *propK > 0 {
		cfg.TLRVariants = []tlr.Latency{tlr.PropLatency(*propK)}
	}
	res := *run(tlr.Request{Prog: prog, Study: &cfg}).Study

	fmt.Printf("%s: %d instructions, window=%s\n", name, res.ILR.Instructions, windowName(*window))
	fmt.Printf("  base IPC                 %8.2f  (%.0f cycles)\n",
		float64(res.ILR.Instructions)/res.ILR.BaseCycles, res.ILR.BaseCycles)
	fmt.Printf("  ILR reusability          %8.1f%%\n", 100*res.ILR.Reusability())
	for i, lat := range cfg.ILRLatencies {
		fmt.Printf("  ILR speed-up (lat %g)     %8.2f\n", lat, res.ILR.Speedups[i])
	}
	fmt.Printf("  TLR reused               %8.1f%%\n", 100*res.TLR.ReusedFraction())
	fmt.Printf("  TLR speed-up             %8.2f\n", res.TLR.Speedups[0])
	fmt.Printf("  traces                   %8d  (avg %.1f instr, max %d)\n",
		res.TLR.Stats.Traces, res.TLR.Stats.AvgLen(), res.TLR.Stats.MaxLen)
	ir, im, _ := res.TLR.Stats.AvgIns()
	or, om, _ := res.TLR.Stats.AvgOuts()
	fmt.Printf("  per trace                %8s  %.1f reg + %.1f mem in, %.1f reg + %.1f mem out\n",
		"", ir, im, or, om)
}

func loadProgram(wname, file string) (*tlr.Program, string, error) {
	switch {
	case wname != "" && file != "":
		return nil, "", fmt.Errorf("use -w or -f, not both")
	case wname != "":
		w, ok := tlr.WorkloadByName(wname)
		if !ok {
			return nil, "", fmt.Errorf("unknown workload %q (try -list)", wname)
		}
		p, err := w.Program()
		return p, w.Name, err
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, "", err
		}
		p, err := tlr.AssembleNamed(file, string(src))
		return p, file, err
	default:
		return nil, "", fmt.Errorf("need -w workload or -f file (or -list)")
	}
}

func runRTM(prog *tlr.Program, name, size, heuristic string, skip, budget uint64, pipe bool) {
	var geom tlr.Geometry
	switch strings.ToLower(size) {
	case "512":
		geom = tlr.Geometry512
	case "4k":
		geom = tlr.Geometry4K
	case "32k":
		geom = tlr.Geometry32K
	case "256k":
		geom = tlr.Geometry256K
	default:
		fail(fmt.Errorf("unknown RTM size %q (512, 4k, 32k, 256k)", size))
	}
	cfg := tlr.RTMConfig{Geometry: geom}
	switch h := strings.ToLower(heuristic); {
	case h == "ilrne":
		cfg.Heuristic = tlr.ILRNE
	case h == "ilrexp":
		cfg.Heuristic = tlr.ILREXP
	case strings.HasPrefix(h, "i"):
		n, err := strconv.Atoi(h[1:])
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad heuristic %q (ilrne, ilrexp, iN)", heuristic))
		}
		cfg.Heuristic, cfg.N = tlr.IEXP, n
	default:
		fail(fmt.Errorf("bad heuristic %q (ilrne, ilrexp, iN)", heuristic))
	}
	if pipe {
		runPipeline(prog, name, cfg, skip, budget)
		return
	}
	res := *run(tlr.Request{Prog: prog, RTM: &cfg, Skip: skip, Budget: budget}).RTM
	fmt.Printf("%s: RTM %v, heuristic %v", name, geom, cfg.Heuristic)
	if cfg.Heuristic == tlr.IEXP {
		fmt.Printf(" (n=%d)", cfg.N)
	}
	fmt.Println()
	fmt.Printf("  retired                  %8d  (%d executed + %d skipped)\n", res.Total(), res.Executed, res.Skipped)
	fmt.Printf("  reused instructions      %8.1f%%\n", 100*res.ReusedFraction())
	fmt.Printf("  reuse operations         %8d  (avg trace %.1f instr)\n", res.Hits, res.AvgReusedLen())
	fmt.Printf("  stored traces            %8d  of %d\n", res.Stored, geom.Entries())
	fmt.Printf("  inserts/evictions        %8d / %d\n", res.RTM.Inserts, res.RTM.TraceEvicts)
	if len(res.Top) > 0 {
		fmt.Println("  hottest traces:")
		for _, tp := range res.Top {
			first := "?"
			if tp.StartPC < uint64(len(prog.Insts)) {
				first = prog.Insts[tp.StartPC].String()
			}
			fmt.Printf("    pc=%-6d len=%-3d hits=%-7d io=%d/%d  %s\n",
				tp.StartPC, tp.Len, tp.Hits, tp.Ins, tp.Outs, first)
		}
	}
}

// runPipeline compares the base machine against both reuse-test triggers
// on the execution-driven pipeline model, as one three-request batch.
func runPipeline(prog *tlr.Program, name string, rcfg tlr.RTMConfig, skip, budget uint64) {
	res, err := tlr.RunBatch(context.Background(), []tlr.Request{
		{ID: "base", Prog: prog, Pipeline: &tlr.PipelineConfig{}, Skip: skip, Budget: budget},
		{ID: "fetch", Prog: prog, Pipeline: &tlr.PipelineConfig{RTM: &rcfg}, Skip: skip, Budget: budget},
		{ID: "wait", Prog: prog, Pipeline: &tlr.PipelineConfig{RTM: &rcfg, WaitForOperands: true}, Skip: skip, Budget: budget},
	})
	if err != nil {
		fail(err)
	}
	base, fetch, wait := *res[0].Pipeline, *res[1].Pipeline, *res[2].Pipeline
	fmt.Printf("%s: execution-driven pipeline (4-wide fetch, 256-entry window), RTM %v %v\n",
		name, rcfg.Geometry, rcfg.Heuristic)
	row := func(label string, r tlr.PipelineResult) {
		fmt.Printf("  %-26s IPC %6.2f   reused %5.1f%%   hits %8d   stalls %d\n",
			label, r.IPC(), 100*float64(r.Skipped)/float64(max(r.Retired, 1)), r.Hits, r.WindowStalls)
	}
	row("base machine", base)
	row("reuse test at fetch", fetch)
	row("reuse test at operand-ready", wait)
	if base.IPC() > 0 {
		fmt.Printf("  speed-up: %.2fx (fetch test), %.2fx (operand-ready test)\n",
			fetch.IPC()/base.IPC(), wait.IPC()/base.IPC())
	}
}

// runVP prints the value-prediction limit study, the §1
// speculation-vs-reuse comparison.
func runVP(prog *tlr.Program, name string, window int, skip, budget uint64) {
	res := *run(tlr.Request{
		Prog:   prog,
		VP:     &tlr.VPConfig{Window: window},
		Skip:   skip,
		Budget: budget,
	}).VP
	fmt.Printf("%s: last-value-prediction limit, %d instructions, window=%s\n",
		name, res.Instructions, windowName(window))
	fmt.Printf("  base IPC                 %8.2f  (%.0f cycles)\n",
		float64(res.Instructions)/res.BaseCycles, res.BaseCycles)
	fmt.Printf("  predictable outputs      %8.1f%%\n", 100*res.PredictedFraction())
	fmt.Printf("  speed-up                 %8.2f\n", res.Speedup)
}

func windowName(w int) string {
	if w == 0 {
		return "infinite"
	}
	return strconv.Itoa(w)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tlrsim:", err)
	os.Exit(1)
}
