// Command tlrexp regenerates every table and figure of the paper's
// evaluation section (Figures 3-9 and the §4.5 bandwidth table).
//
// Usage:
//
//	tlrexp [-budget N] [-skip N] [-window W] [-rtmbudget N] [-fig 6a] [-no-rtm]
//	tlrexp -bench-out BENCH_ci.json [-budget N] [-rtmbudget N]
//
// Each table prints the same series the paper plots, with the paper's
// numbers quoted in the footnote for side-by-side comparison.
//
// With -bench-out, tlrexp instead benchmarks the Figure-9 RTM sweep
// three ways — sequentially (one worker, the seed's serial path),
// in parallel across the batch service's worker pool, and warm from the
// result cache — verifies all three agree cell for cell, and writes a
// JSON timing summary to the given file (the CI perf artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"github.com/tracereuse/tlr/internal/expt"
	"github.com/tracereuse/tlr/internal/service"
)

func main() {
	cfg := expt.DefaultConfig()
	budget := flag.Uint64("budget", cfg.Budget, "instructions per workload (limit studies)")
	skip := flag.Uint64("skip", cfg.Skip, "instructions to skip before measuring")
	window := flag.Int("window", cfg.Window, "finite instruction window size")
	rtmBudget := flag.Uint64("rtmbudget", cfg.RTMBudget, "instructions per workload and configuration (Figure 9)")
	workers := flag.Int("workers", 0, "parallel workers (0 = auto)")
	fig := flag.String("fig", "", "render only the figure whose title contains this substring (e.g. \"6a\")")
	noRTM := flag.Bool("no-rtm", false, "skip the Figure 9 RTM sweep")
	ablations := flag.Bool("ablations", false, "also run the ablations and extensions (block-bounded, strict, valid-bit, speculation, ILP limits, pipeline)")
	benchOut := flag.String("bench-out", "", "benchmark the sequential vs parallel Figure-9 sweep and write a JSON summary to this file")
	flag.Parse()

	cfg.Budget = *budget
	cfg.Skip = *skip
	cfg.Window = *window
	cfg.RTMBudget = *rtmBudget
	cfg.Workers = *workers

	if *benchOut != "" {
		if err := runSweepBench(cfg, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	ms, err := expt.Measure(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlrexp:", err)
		os.Exit(1)
	}
	tables := expt.LimitTables(ms)
	if *ablations {
		tables = append(tables, expt.AblationTables(ms)...)
		cells, err := expt.MeasureInvalidation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.InvalidationTable(cells))
		ilp, err := expt.MeasureILP(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.ILPTable(ilp))
		pipe, err := expt.MeasurePipeline(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.PipelineTable(pipe))
	}
	if !*noRTM {
		cells, err := expt.MeasureRTM(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.RTMTables(cells)...)
	}
	shown := 0
	for _, t := range tables {
		if *fig != "" && !strings.Contains(strings.ToLower(t.Title), strings.ToLower(*fig)) {
			continue
		}
		fmt.Println(t.Render())
		shown++
	}
	if *fig != "" && shown == 0 {
		fmt.Fprintf(os.Stderr, "tlrexp: no figure matches %q\n", *fig)
		os.Exit(1)
	}
	fmt.Printf("(%d tables, budget %d/workload, window %d, wall %.1fs)\n",
		shown, cfg.Budget, cfg.Window, time.Since(start).Seconds())
}

// sweepBench is the JSON schema of -bench-out (the BENCH_ci.json CI
// artifact): wall times for the Figure-9 RTM sweep run sequentially,
// in parallel, and warm from the result cache.
type sweepBench struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Cells           int     `json:"cells"`
	RTMBudget       uint64  `json:"rtmBudget"`
	Skip            uint64  `json:"skip"`
	SequentialSecs  float64 `json:"sequentialSeconds"`
	ParallelSecs    float64 `json:"parallelSeconds"`
	WarmSecs        float64 `json:"warmSeconds"`
	Speedup         float64 `json:"speedup"`
	WarmSpeedup     float64 `json:"warmSpeedup"`
	ParallelWorkers int     `json:"parallelWorkers"`
}

// runSweepBench times the Figure-9 sweep three ways on fresh services,
// checks the runs agree cell for cell, and writes the summary JSON.
func runSweepBench(cfg expt.Config, path string) error {
	if cfg.RTMBudget == 0 {
		return fmt.Errorf("-bench-out needs a positive -rtmbudget")
	}
	// Open the output first: an unwritable path should fail before the
	// sweep burns minutes of simulation.  On any later error, remove the
	// empty file so downstream readers see the sweep error, not a JSON
	// decode failure on a zero-byte artifact.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	wrote := false
	defer func() {
		f.Close()
		if !wrote {
			os.Remove(path)
		}
	}()
	seqSvc := service.New(service.Options{Workers: 1})
	defer seqSvc.Close()
	t0 := time.Now()
	seqCells, err := expt.MeasureRTMWith(seqSvc, cfg)
	if err != nil {
		return err
	}
	seq := time.Since(t0)

	parSvc := service.New(service.Options{})
	defer parSvc.Close()
	t1 := time.Now()
	parCells, err := expt.MeasureRTMWith(parSvc, cfg)
	if err != nil {
		return err
	}
	par := time.Since(t1)

	t2 := time.Now()
	warmCells, err := expt.MeasureRTMWith(parSvc, cfg)
	if err != nil {
		return err
	}
	warm := time.Since(t2)

	if !reflect.DeepEqual(seqCells, parCells) {
		return fmt.Errorf("parallel sweep diverged from sequential")
	}
	if !reflect.DeepEqual(seqCells, warmCells) {
		return fmt.Errorf("cache-warm sweep diverged from sequential")
	}

	b := sweepBench{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Cells:           len(seqCells),
		RTMBudget:       cfg.RTMBudget,
		Skip:            cfg.Skip,
		SequentialSecs:  seq.Seconds(),
		ParallelSecs:    par.Seconds(),
		WarmSecs:        warm.Seconds(),
		Speedup:         seq.Seconds() / par.Seconds(),
		WarmSpeedup:     seq.Seconds() / warm.Seconds(),
		ParallelWorkers: parSvc.Workers(),
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	wrote = true
	fmt.Printf("Figure-9 sweep: %d cells, budget %d\n", b.Cells, b.RTMBudget)
	fmt.Printf("  sequential %.2fs, parallel %.2fs on %d workers (%.1fx), warm %.3fs (%.0fx)\n",
		b.SequentialSecs, b.ParallelSecs, b.ParallelWorkers, b.Speedup, b.WarmSecs, b.WarmSpeedup)
	return nil
}
