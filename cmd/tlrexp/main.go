// Command tlrexp regenerates every table and figure of the paper's
// evaluation section (Figures 3-9 and the §4.5 bandwidth table).
//
// Usage:
//
//	tlrexp [-budget N] [-skip N] [-window W] [-rtmbudget N] [-fig 6a] [-no-rtm]
//
// Each table prints the same series the paper plots, with the paper's
// numbers quoted in the footnote for side-by-side comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tracereuse/tlr/internal/expt"
)

func main() {
	cfg := expt.DefaultConfig()
	budget := flag.Uint64("budget", cfg.Budget, "instructions per workload (limit studies)")
	skip := flag.Uint64("skip", cfg.Skip, "instructions to skip before measuring")
	window := flag.Int("window", cfg.Window, "finite instruction window size")
	rtmBudget := flag.Uint64("rtmbudget", cfg.RTMBudget, "instructions per workload and configuration (Figure 9)")
	workers := flag.Int("workers", 0, "parallel workers (0 = auto)")
	fig := flag.String("fig", "", "render only the figure whose title contains this substring (e.g. \"6a\")")
	noRTM := flag.Bool("no-rtm", false, "skip the Figure 9 RTM sweep")
	ablations := flag.Bool("ablations", false, "also run the ablations and extensions (block-bounded, strict, valid-bit, speculation, ILP limits, pipeline)")
	flag.Parse()

	cfg.Budget = *budget
	cfg.Skip = *skip
	cfg.Window = *window
	cfg.RTMBudget = *rtmBudget
	cfg.Workers = *workers

	start := time.Now()
	ms, err := expt.Measure(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlrexp:", err)
		os.Exit(1)
	}
	tables := expt.LimitTables(ms)
	if *ablations {
		tables = append(tables, expt.AblationTables(ms)...)
		cells, err := expt.MeasureInvalidation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.InvalidationTable(cells))
		ilp, err := expt.MeasureILP(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.ILPTable(ilp))
		pipe, err := expt.MeasurePipeline(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.PipelineTable(pipe))
	}
	if !*noRTM {
		cells, err := expt.MeasureRTM(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.RTMTables(cells)...)
	}
	shown := 0
	for _, t := range tables {
		if *fig != "" && !strings.Contains(strings.ToLower(t.Title), strings.ToLower(*fig)) {
			continue
		}
		fmt.Println(t.Render())
		shown++
	}
	if *fig != "" && shown == 0 {
		fmt.Fprintf(os.Stderr, "tlrexp: no figure matches %q\n", *fig)
		os.Exit(1)
	}
	fmt.Printf("(%d tables, budget %d/workload, window %d, wall %.1fs)\n",
		shown, cfg.Budget, cfg.Window, time.Since(start).Seconds())
}
