// Command tlrexp regenerates every table and figure of the paper's
// evaluation section (Figures 3-9 and the §4.5 bandwidth table).
//
// Usage:
//
//	tlrexp [-budget N] [-skip N] [-window W] [-rtmbudget N] [-fig 6a] [-no-rtm]
//	tlrexp -bench-out BENCH_ci.json [-budget N] [-rtmbudget N]
//
// Each table prints the same series the paper plots, with the paper's
// numbers quoted in the footnote for side-by-side comparison.
//
// With -bench-out, tlrexp instead benchmarks the Figure-9 RTM sweep
// three ways through the public tlr.RunBatch API — sequentially (a
// one-worker Batcher, the seed's serial path), in parallel across a
// Batcher's full worker pool, and warm from its result cache — verifies
// all three agree cell for cell, and writes a JSON timing summary to
// the given file (the CI perf artifact).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"github.com/tracereuse/tlr"
	"github.com/tracereuse/tlr/internal/expt"
	"github.com/tracereuse/tlr/internal/replaybench"
)

func main() {
	cfg := expt.DefaultConfig()
	budget := flag.Uint64("budget", cfg.Budget, "instructions per workload (limit studies)")
	skip := flag.Uint64("skip", cfg.Skip, "instructions to skip before measuring")
	window := flag.Int("window", cfg.Window, "finite instruction window size")
	rtmBudget := flag.Uint64("rtmbudget", cfg.RTMBudget, "instructions per workload and configuration (Figure 9)")
	workers := flag.Int("workers", 0, "parallel workers (0 = auto)")
	fig := flag.String("fig", "", "render only the figure whose title contains this substring (e.g. \"6a\")")
	noRTM := flag.Bool("no-rtm", false, "skip the Figure 9 RTM sweep")
	ablations := flag.Bool("ablations", false, "also run the ablations and extensions (block-bounded, strict, valid-bit, speculation, ILP limits, pipeline)")
	benchOut := flag.String("bench-out", "", "benchmark the sequential vs parallel Figure-9 sweep and write a JSON summary to this file")
	flag.Parse()

	cfg.Budget = *budget
	cfg.Skip = *skip
	cfg.Window = *window
	cfg.RTMBudget = *rtmBudget
	cfg.Workers = *workers

	if *benchOut != "" {
		if err := runSweepBench(cfg, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	ms, err := expt.Measure(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlrexp:", err)
		os.Exit(1)
	}
	tables := expt.LimitTables(ms)
	if *ablations {
		tables = append(tables, expt.AblationTables(ms)...)
		cells, err := expt.MeasureInvalidation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.InvalidationTable(cells))
		ilp, err := expt.MeasureILP(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.ILPTable(ilp))
		pipe, err := expt.MeasurePipeline(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.PipelineTable(pipe))
	}
	if !*noRTM {
		cells, err := expt.MeasureRTM(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlrexp:", err)
			os.Exit(1)
		}
		tables = append(tables, expt.RTMTables(cells)...)
	}
	shown := 0
	for _, t := range tables {
		if *fig != "" && !strings.Contains(strings.ToLower(t.Title), strings.ToLower(*fig)) {
			continue
		}
		fmt.Println(t.Render())
		shown++
	}
	if *fig != "" && shown == 0 {
		fmt.Fprintf(os.Stderr, "tlrexp: no figure matches %q\n", *fig)
		os.Exit(1)
	}
	fmt.Printf("(%d tables, budget %d/workload, window %d, wall %.1fs)\n",
		shown, cfg.Budget, cfg.Window, time.Since(start).Seconds())
}

// sweepBench is the JSON schema of -bench-out (the BENCH_ci.json CI
// artifact): wall times for the Figure-9 RTM sweep run sequentially,
// in parallel, and warm from the result cache, plus the record/replay
// comparison (BenchmarkReplayVsExecute's grid): the deep-skip analysis
// grid driven by live execution versus by replaying one recording.
type sweepBench struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Cells           int     `json:"cells"`
	RTMBudget       uint64  `json:"rtmBudget"`
	Skip            uint64  `json:"skip"`
	SequentialSecs  float64 `json:"sequentialSeconds"`
	ParallelSecs    float64 `json:"parallelSeconds"`
	WarmSecs        float64 `json:"warmSeconds"`
	Speedup         float64 `json:"speedup"`
	WarmSpeedup     float64 `json:"warmSpeedup"`
	ParallelWorkers int     `json:"parallelWorkers"`

	ReplayCells   int     `json:"replayCells"`
	ReplaySkip    uint64  `json:"replaySkip"`
	ReplayBudget  uint64  `json:"replayBudget"`
	RecordSecs    float64 `json:"recordSeconds"`
	ExecuteSecs   float64 `json:"executeSeconds"`
	ReplaySecs    float64 `json:"replaySeconds"`
	ReplaySpeedup float64 `json:"replaySpeedup"`

	// The shallow-skip grid: the same cells with a 2000-instruction
	// warm-up.  There is nothing for replay's O(1) seek to amortise, so
	// the ratio isolates decode-vs-execute (plus the analysis cost both
	// sides pay identically); CI gates parity.
	ReplayShallowSkip    uint64  `json:"replayShallowSkip"`
	ExecuteShallowSecs   float64 `json:"executeShallowSeconds"`
	ReplayShallowSecs    float64 `json:"replayShallowSeconds"`
	ReplayShallowSpeedup float64 `json:"replayShallowSpeedup"`

	// Format-level statistics over internal/replaybench's workload mix
	// (see EncodingStats).  encodeBytesPerRecord is the v4 container at
	// rest; CI gates it at <= 0.5x of the v2 container, gates
	// decodeSpeedup (v4 plane-split decode vs the canonical per-record
	// decode it replaced) at >= 2.0x, and gates decodeNsPerRecord at
	// <= 2.25x stepNsPerRecord (measured ~1.9x).
	EncodeBytesPerRecord       float64 `json:"encodeBytesPerRecord"`
	EncodedMemBytesPerRecord   float64 `json:"encodedMemBytesPerRecord"`
	CanonicalBytesPerRecord    float64 `json:"canonicalBytesPerRecord"`
	V2FileBytesPerRecord       float64 `json:"v2FileBytesPerRecord"`
	DecodeNsPerRecord          float64 `json:"decodeNsPerRecord"`
	CanonicalDecodeNsPerRecord float64 `json:"canonicalDecodeNsPerRecord"`
	StepNsPerRecord            float64 `json:"stepNsPerRecord"`
	DecodeSpeedup              float64 `json:"decodeSpeedup"`

	// Streamed (on-disk) replay memory: heap bytes allocated by one
	// full incremental replay of a version-3 file at two stream lengths
	// (see replaybench.MeasureStreamMemory).  The constant-memory gate:
	// allocation per replayed record must stay a tiny constant —
	// marginal cost well under a byte per record (compress/flate's
	// transient per-deflate-block tables are the only length-
	// proportional term), orders of magnitude below materialising the
	// trace.
	StreamSmallRecords        uint64  `json:"streamSmallRecords"`
	StreamLargeRecords        uint64  `json:"streamLargeRecords"`
	StreamSmallAllocBytes     uint64  `json:"streamSmallAllocBytes"`
	StreamLargeAllocBytes     uint64  `json:"streamLargeAllocBytes"`
	StreamAllocBytesPerRecord float64 `json:"streamAllocBytesPerRecord"`

	// Reuse-distance analytics: one exact LRU-stack analyze pass
	// (internal/analytics, the /v1/analyze engine) over a fresh
	// recording, so the per-record cost of the O(n log n) Fenwick-tree
	// distance computation is tracked release over release.
	AnalyzeRecords     uint64  `json:"analyzeRecords"`
	AnalyzeSecs        float64 `json:"analyzeSeconds"`
	AnalyzeNsPerRecord float64 `json:"analyzeNsPerRecord"`
}

// rtmSweepRequests builds the Figure-9 grid (collection heuristic x RTM
// capacity x workload) as public-API requests.
func rtmSweepRequests(cfg expt.Config) []tlr.Request {
	var reqs []tlr.Request
	for _, h := range expt.RTMHeuristics() {
		for _, g := range expt.RTMGeometries() {
			for _, w := range tlr.Workloads() {
				reqs = append(reqs, tlr.Request{
					ID:       fmt.Sprintf("%s/%s/%v", w.Name, h.Label, g),
					Workload: w.Name,
					RTM:      &tlr.RTMConfig{Geometry: g, Heuristic: h.Heuristic, N: h.N},
					Skip:     cfg.Skip,
					Budget:   cfg.RTMBudget,
				})
			}
		}
	}
	return reqs
}

// rtmPayloads strips the per-run metadata (Cached) so sweeps can be
// compared simulation for simulation.
func rtmPayloads(res []tlr.Result) []tlr.RTMResult {
	out := make([]tlr.RTMResult, len(res))
	for i, r := range res {
		out[i] = *r.RTM
	}
	return out
}

// runSweepBench times the Figure-9 sweep three ways on fresh Batchers
// through the public RunBatch API, checks the runs agree cell for cell,
// and writes the summary JSON.
func runSweepBench(cfg expt.Config, path string) error {
	if cfg.RTMBudget == 0 {
		return fmt.Errorf("-bench-out needs a positive -rtmbudget")
	}
	// Open the output first: an unwritable path should fail before the
	// sweep burns minutes of simulation.  On any later error, remove the
	// empty file so downstream readers see the sweep error, not a JSON
	// decode failure on a zero-byte artifact.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	wrote := false
	defer func() {
		f.Close()
		if !wrote {
			os.Remove(path)
		}
	}()
	ctx := context.Background()
	reqs := rtmSweepRequests(cfg)

	seqB := tlr.NewBatcher(tlr.BatchOptions{Workers: 1})
	defer seqB.Close()
	t0 := time.Now()
	seqRes, err := seqB.RunBatch(ctx, reqs)
	if err != nil {
		return err
	}
	seq := time.Since(t0)

	parB := tlr.NewBatcher(tlr.BatchOptions{})
	defer parB.Close()
	t1 := time.Now()
	parRes, err := parB.RunBatch(ctx, reqs)
	if err != nil {
		return err
	}
	par := time.Since(t1)

	t2 := time.Now()
	warmRes, err := parB.RunBatch(ctx, reqs)
	if err != nil {
		return err
	}
	warm := time.Since(t2)

	seqCells := rtmPayloads(seqRes)
	if !reflect.DeepEqual(seqCells, rtmPayloads(parRes)) {
		return fmt.Errorf("parallel sweep diverged from sequential")
	}
	if !reflect.DeepEqual(seqCells, rtmPayloads(warmRes)) {
		return fmt.Errorf("cache-warm sweep diverged from sequential")
	}

	b := sweepBench{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Cells:           len(seqCells),
		RTMBudget:       cfg.RTMBudget,
		Skip:            cfg.Skip,
		SequentialSecs:  seq.Seconds(),
		ParallelSecs:    par.Seconds(),
		WarmSecs:        warm.Seconds(),
		Speedup:         seq.Seconds() / par.Seconds(),
		WarmSpeedup:     seq.Seconds() / warm.Seconds(),
		ParallelWorkers: parB.Workers(),
	}
	if err := runReplayBench(ctx, &b); err != nil {
		return err
	}
	if err := runAnalyzeBench(ctx, &b); err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	wrote = true
	fmt.Printf("Figure-9 sweep: %d cells, budget %d\n", b.Cells, b.RTMBudget)
	fmt.Printf("  sequential %.2fs, parallel %.2fs on %d workers (%.1fx), warm %.3fs (%.0fx)\n",
		b.SequentialSecs, b.ParallelSecs, b.ParallelWorkers, b.Speedup, b.WarmSecs, b.WarmSpeedup)
	fmt.Printf("record/replay grid: %d cells, budget %d\n", b.ReplayCells, b.ReplayBudget)
	fmt.Printf("  deep skip %d:    execute %.2fs, record-once %.2fs, replay %.2fs (%.1fx)\n",
		b.ReplaySkip, b.ExecuteSecs, b.RecordSecs, b.ReplaySecs, b.ReplaySpeedup)
	fmt.Printf("  shallow skip %d: execute %.2fs, replay %.2fs (%.2fx)\n",
		b.ReplayShallowSkip, b.ExecuteShallowSecs, b.ReplayShallowSecs, b.ReplayShallowSpeedup)
	fmt.Printf("trace encoding (workload mix): canonical %.1f B/rec (v2 file %.1f), v4 %.1f B/rec in memory, %.1f on disk\n",
		b.CanonicalBytesPerRecord, b.V2FileBytesPerRecord, b.EncodedMemBytesPerRecord, b.EncodeBytesPerRecord)
	fmt.Printf("  decode %.1f ns/rec (canonical decode %.1f, %.2fx; simulator step %.1f)\n",
		b.DecodeNsPerRecord, b.CanonicalDecodeNsPerRecord, b.DecodeSpeedup, b.StepNsPerRecord)
	fmt.Printf("streamed replay memory: %d records -> %d B allocated, %d records -> %d B (%.2f B/record)\n",
		b.StreamSmallRecords, b.StreamSmallAllocBytes, b.StreamLargeRecords, b.StreamLargeAllocBytes,
		b.StreamAllocBytesPerRecord)
	fmt.Printf("reuse-distance analyze: %d records in %.3fs (%.1f ns/record)\n",
		b.AnalyzeRecords, b.AnalyzeSecs, b.AnalyzeNsPerRecord)
	return nil
}

// runAnalyzeBench times the reuse-distance analytics engine over one
// fresh recording and fills the analyze fields of the summary.
func runAnalyzeBench(ctx context.Context, b *sweepBench) error {
	const budget = 200_000
	rec, err := tlr.Record(ctx, tlr.RecordSpec{Workload: "compress", Budget: budget})
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := tlr.Run(ctx, tlr.Request{Trace: rec, Analyze: &tlr.AnalyzeConfig{}})
	if err != nil {
		return err
	}
	d := time.Since(t0)
	if res.Analyze == nil || res.Analyze.Records != budget {
		return fmt.Errorf("analyze bench histogram: %+v", res.Analyze)
	}
	b.AnalyzeRecords = budget
	b.AnalyzeSecs = d.Seconds()
	b.AnalyzeNsPerRecord = float64(d.Nanoseconds()) / float64(budget)
	return nil
}

// runReplayBench times the deep- and shallow-skip grids
// (internal/replaybench, the same grids BenchmarkReplayVsExecute runs)
// executed live versus replayed from one recording, verifies the runs
// agree cell for cell at both depths (replay equivalence, enforced on
// every CI run), measures the format-level encoding statistics, and
// fills the replay fields of the summary.
func runReplayBench(ctx context.Context, b *sweepBench) error {
	t0 := time.Now()
	rec, err := tlr.Record(ctx, replaybench.RecordSpec())
	if err != nil {
		return err
	}
	record := time.Since(t0)

	runGrid := func(reqs []tlr.Request) ([]tlr.Result, time.Duration, error) {
		batcher := tlr.NewBatcher(tlr.BatchOptions{Workers: 1})
		defer batcher.Close()
		t := time.Now()
		res, err := batcher.RunBatch(ctx, reqs)
		return res, time.Since(t), err
	}
	verify := func(execRes, replayRes []tlr.Result, depth string) error {
		for i := range execRes {
			exe := []any{execRes[i].Study, execRes[i].RTM, execRes[i].VP}
			rep := []any{replayRes[i].Study, replayRes[i].RTM, replayRes[i].VP}
			if !reflect.DeepEqual(exe, rep) {
				return fmt.Errorf("replayed %s grid cell %d diverged from live execution", depth, i)
			}
		}
		return nil
	}

	execRes, exec, err := runGrid(replaybench.Grid(nil))
	if err != nil {
		return err
	}
	replayRes, replay, err := runGrid(replaybench.Grid(rec))
	if err != nil {
		return err
	}
	if err := verify(execRes, replayRes, "deep"); err != nil {
		return err
	}

	execShallowRes, execShallow, err := runGrid(replaybench.ShallowGrid(nil))
	if err != nil {
		return err
	}
	replayShallowRes, replayShallow, err := runGrid(replaybench.ShallowGrid(rec))
	if err != nil {
		return err
	}
	if err := verify(execShallowRes, replayShallowRes, "shallow"); err != nil {
		return err
	}

	enc, err := replaybench.MeasureEncoding(300_000)
	if err != nil {
		return err
	}

	memDir, err := os.MkdirTemp("", "tlr-streammem-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(memDir)
	mem, err := replaybench.MeasureStreamMemory(memDir, 200_000)
	if err != nil {
		return err
	}

	b.ReplayCells = len(execRes)
	b.ReplaySkip = replaybench.Skip
	b.ReplayBudget = replaybench.Budget
	b.RecordSecs = record.Seconds()
	b.ExecuteSecs = exec.Seconds()
	b.ReplaySecs = replay.Seconds()
	b.ReplaySpeedup = exec.Seconds() / replay.Seconds()
	b.ReplayShallowSkip = replaybench.ShallowSkip
	b.ExecuteShallowSecs = execShallow.Seconds()
	b.ReplayShallowSecs = replayShallow.Seconds()
	b.ReplayShallowSpeedup = execShallow.Seconds() / replayShallow.Seconds()
	b.EncodeBytesPerRecord = enc.FileBytesPerRecord
	b.EncodedMemBytesPerRecord = enc.EncodedBytesPerRecord
	b.CanonicalBytesPerRecord = enc.CanonicalBytesPerRecord
	b.V2FileBytesPerRecord = enc.V2FileBytesPerRecord
	b.DecodeNsPerRecord = enc.DecodeNsPerRecord
	b.CanonicalDecodeNsPerRecord = enc.CanonicalDecodeNsPerRecord
	b.StepNsPerRecord = enc.StepNsPerRecord
	b.DecodeSpeedup = enc.DecodeSpeedup
	b.StreamSmallRecords = mem.SmallRecords
	b.StreamLargeRecords = mem.LargeRecords
	b.StreamSmallAllocBytes = mem.SmallAllocBytes
	b.StreamLargeAllocBytes = mem.LargeAllocBytes
	b.StreamAllocBytesPerRecord = float64(mem.LargeAllocBytes) / float64(mem.LargeRecords)
	return nil
}
