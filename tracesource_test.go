package tlr

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// payload strips per-run metadata so replayed and executed results can
// be compared simulation for simulation.
func payload(r Result) any {
	switch r.Kind {
	case KindStudy:
		return *r.Study
	case KindRTM:
		return *r.RTM
	case KindVP:
		return *r.VP
	default:
		return nil
	}
}

// TestReplayEquivalenceAndCacheSharing is the redesign's core contract:
// for every trace-driven kind, a request backed by a recorded trace is
// byte-identical to the same request backed by the originating program,
// hits the very same (digest-keyed) result-cache entry on a shared
// Batcher, and reproduces identically on a cold Batcher.
func TestReplayEquivalenceAndCacheSharing(t *testing.T) {
	const skip, budget = 1_000, 20_000
	ctx := context.Background()

	rec, err := Record(ctx, RecordSpec{Workload: "compress", Budget: skip + budget})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rec.Digest(), "sha256:") {
		t.Fatalf("digest %q", rec.Digest())
	}

	reqs := func(src TraceSource) []Request {
		progOrTrace := func(r Request) Request {
			if src != nil {
				r.Trace = src
			} else {
				r.Workload = "compress"
			}
			return r
		}
		return []Request{
			progOrTrace(Request{ID: "study", Study: &StudyConfig{Budget: budget, Skip: skip, Window: 256}}),
			progOrTrace(Request{ID: "rtm", RTM: &RTMConfig{Geometry: Geometry4K, Heuristic: ILREXP},
				Skip: skip, Budget: budget}),
			progOrTrace(Request{ID: "vp", VP: &VPConfig{Window: 256}, Skip: skip, Budget: budget}),
		}
	}

	shared := NewBatcher(BatchOptions{})
	defer shared.Close()
	live, err := shared.RunBatch(ctx, reqs(nil))
	if err != nil {
		t.Fatal(err)
	}

	// Same Batcher: the trace-backed requests must be answered from the
	// cache entries the program-backed runs populated.
	replayed, err := shared.RunBatch(ctx, reqs(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if !replayed[i].Cached {
			t.Errorf("%s: trace-backed request missed the program-backed cache entry", live[i].ID)
		}
		if !reflect.DeepEqual(payload(live[i]), payload(replayed[i])) {
			t.Errorf("%s: replay differs from execution:\nlive   %+v\nreplay %+v",
				live[i].ID, payload(live[i]), payload(replayed[i]))
		}
	}

	// Cold Batcher: the replay actually simulates (no cache) and still
	// reproduces execution exactly.
	cold := NewBatcher(BatchOptions{})
	defer cold.Close()
	fresh, err := cold.RunBatch(ctx, reqs(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if fresh[i].Cached {
			t.Errorf("%s: cold replay unexpectedly cached", live[i].ID)
		}
		if !reflect.DeepEqual(payload(live[i]), payload(fresh[i])) {
			t.Errorf("%s: cold replay differs from execution:\nlive   %+v\nreplay %+v",
				live[i].ID, payload(live[i]), payload(fresh[i]))
		}
	}

	// And the reverse direction: with the replay results cached, the
	// equivalent program-backed request hits them.
	liveOnCold, err := cold.RunBatch(ctx, reqs(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := range liveOnCold {
		if !liveOnCold[i].Cached {
			t.Errorf("%s: program-backed request missed the trace-backed cache entry", liveOnCold[i].ID)
		}
	}
}

// TestReplayEquivalenceWithRecordedSkip: a recording made past a
// warm-up skip starts mid-stream; trace-backed requests on top of it
// must still replay exactly the window the equivalent program-backed
// request measures (the recording's own skip is part of the cache
// identity but must not be applied to the cursor a second time).
func TestReplayEquivalenceWithRecordedSkip(t *testing.T) {
	const recSkip, reqSkip, budget = 1_500, 500, 10_000
	ctx := context.Background()
	rec, err := Record(ctx, RecordSpec{Workload: "compress", Skip: recSkip, Budget: reqSkip + budget})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatcher(BatchOptions{})
	defer b.Close()
	reqs := func(src TraceSource) []Request {
		progOrTrace := func(r Request, skip uint64) Request {
			if src != nil {
				r.Trace = src
			} else {
				r.Workload = "compress"
				skip += recSkip // program-backed requests skip from instruction 0
			}
			if r.Study != nil {
				r.Study.Skip = skip
			} else {
				r.Skip = skip
			}
			return r
		}
		return []Request{
			progOrTrace(Request{ID: "study", Study: &StudyConfig{Budget: budget, Window: 256}}, reqSkip),
			progOrTrace(Request{ID: "rtm", RTM: &RTMConfig{Geometry: Geometry4K, Heuristic: IEXP, N: 4}, Budget: budget}, reqSkip),
			progOrTrace(Request{ID: "vp", VP: &VPConfig{Window: 256}, Budget: budget}, reqSkip),
		}
	}
	live, err := b.RunBatch(ctx, reqs(nil))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := b.RunBatch(ctx, reqs(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if !replayed[i].Cached {
			t.Errorf("%s: skip-recorded trace request missed the program-backed cache entry", live[i].ID)
		}
		if !reflect.DeepEqual(payload(live[i]), payload(replayed[i])) {
			t.Errorf("%s: skip-recorded replay differs from execution:\nlive   %+v\nreplay %+v",
				live[i].ID, payload(live[i]), payload(replayed[i]))
		}
	}

	// Cold path too: the replay must actually reproduce, not just hit a
	// (possibly wrong) cache entry.
	cold := NewBatcher(BatchOptions{})
	defer cold.Close()
	fresh, err := cold.RunBatch(ctx, reqs(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if !reflect.DeepEqual(payload(live[i]), payload(fresh[i])) {
			t.Errorf("%s: cold skip-recorded replay differs from execution:\nlive   %+v\nreplay %+v",
				live[i].ID, payload(live[i]), payload(fresh[i]))
		}
	}
}

// TestPipelineRejectsTraceSource: the execution-driven kind rejects
// trace inputs with the typed error, before any simulation starts.
func TestPipelineRejectsTraceSource(t *testing.T) {
	rec, err := Record(context.Background(), RecordSpec{Workload: "li", Budget: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Request{Trace: rec, Pipeline: &PipelineConfig{}, Budget: 1_000})
	if !errors.Is(err, ErrTraceUnsupported) {
		t.Fatalf("err = %v, want ErrTraceUnsupported", err)
	}
}

// TestTraceStoreAndRef: uploading once and sweeping by digest, plus the
// unknown-digest failure mode.
func TestTraceStoreAndRef(t *testing.T) {
	ctx := context.Background()
	b := NewBatcher(BatchOptions{})
	defer b.Close()

	rec, err := Record(ctx, RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	digest, err := b.StoreTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if digest != rec.Digest() {
		t.Fatalf("stored digest %s != trace digest %s", digest, rec.Digest())
	}
	infos := b.Traces()
	if len(infos) != 1 || infos[0].Digest != digest || infos[0].Records != rec.Records() {
		t.Fatalf("store listing %+v", infos)
	}

	res, err := b.Run(ctx, Request{
		Trace: TraceRef(digest),
		Study: &StudyConfig{Budget: 10_000, Window: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := b.Run(ctx, Request{
		Trace: rec,
		Study: &StudyConfig{Budget: 10_000, Window: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stored trace is addressed by digest, so the ref-backed and the
	// (digest-keyed, provenance-free) stored copy agree; the recorded
	// original carries provenance and therefore a different cache key,
	// but the simulation results must match regardless.
	if !reflect.DeepEqual(*res.Study, *direct.Study) {
		t.Errorf("ref-backed study differs from direct:\nref    %+v\ndirect %+v", *res.Study, *direct.Study)
	}

	if _, err := b.Run(ctx, Request{
		Trace: TraceRef("sha256:doesnotexist"),
		Study: &StudyConfig{Budget: 1_000},
	}); err == nil || !strings.Contains(err.Error(), "no stored trace") {
		t.Fatalf("unknown digest: err = %v", err)
	}
}

// TestUndercoveredRecordingRejected: a recording that cannot cover the
// requested skip+budget (and did not run to halt) must fail loudly
// instead of silently answering with a shorter stream under the
// program's cache key.
func TestUndercoveredRecordingRejected(t *testing.T) {
	ctx := context.Background()
	rec, err := Record(ctx, RecordSpec{Workload: "compress", Budget: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Complete() {
		t.Skip("workload halted inside 5k instructions; cannot test undercoverage")
	}
	_, err = Run(ctx, Request{Trace: rec, Study: &StudyConfig{Budget: 20_000}})
	if err == nil || !strings.Contains(err.Error(), "skip+budget") {
		t.Fatalf("err = %v, want undercoverage error", err)
	}

	// The same stream analysed as-is (no provenance) is fine: save and
	// reload to strip provenance, then the stream is the workload.
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, Request{Trace: loaded, Study: &StudyConfig{Budget: 20_000}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Study.ILR.Instructions; got != 5_000 {
		t.Errorf("digest-keyed replay measured %d instructions, want the stream's 5000", got)
	}
}

// TestWireTraceRoundTrip: trace-backed requests cross the wire — inline
// with digest for concrete traces, digest-only for refs — and corrupted
// inline payloads are rejected.
func TestWireTraceRoundTrip(t *testing.T) {
	ctx := context.Background()
	rec, err := Record(ctx, RecordSpec{Workload: "li", Budget: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{ID: "w", Trace: rec, VP: &VPConfig{Window: 64}, Budget: 2_000}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, ok := back.Trace.(*Trace)
	if !ok {
		t.Fatalf("decoded trace source is %T", back.Trace)
	}
	if got.Digest() != rec.Digest() || got.Records() != rec.Records() {
		t.Fatalf("round trip changed the trace: %s/%d vs %s/%d",
			got.Digest(), got.Records(), rec.Digest(), rec.Records())
	}

	// Ref-backed requests stay digest-only.
	refReq := Request{Trace: TraceRef(rec.Digest()), VP: &VPConfig{}, Budget: 100}
	data, err = json.Marshal(refReq)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Trace struct {
			V      int    `json:"v"`
			Digest string `json:"digest"`
			Data   []byte `json:"data"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Trace.Digest != rec.Digest() || len(wire.Trace.Data) != 0 || wire.Trace.V != TraceRefVersion {
		t.Fatalf("ref encoding %+v", wire.Trace)
	}
	var backRef Request
	if err := json.Unmarshal(data, &backRef); err != nil {
		t.Fatal(err)
	}
	if _, ok := backRef.Trace.(refSource); !ok {
		t.Fatalf("decoded ref source is %T", backRef.Trace)
	}

	// A lying digest on inline data must be rejected.
	full, _ := json.Marshal(req)
	tampered := bytes.Replace(full, []byte(rec.Digest()), []byte("sha256:"+strings.Repeat("0", 64)), 1)
	var bad Request
	if err := json.Unmarshal(tampered, &bad); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered inline digest: err = %v", err)
	}
}
