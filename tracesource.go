package tlr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/tracereuse/tlr/internal/asm"
	"github.com/tracereuse/tlr/internal/cpu"
	"github.com/tracereuse/tlr/internal/service"
	"github.com/tracereuse/tlr/internal/trace"
	"github.com/tracereuse/tlr/internal/tracefile"
	"github.com/tracereuse/tlr/internal/workload"
)

// First-class trace sources: the paper's toolflow was trace-driven —
// ATOM-instrumented binaries produced dynamic trace files that the
// reuse engines analysed offline — and this file makes that stream a
// public, pluggable Request input.  A TraceSource stands in for the
// program in the trace-driven request kinds (Study, RTM, VP): Record
// captures a program's dynamic stream once, and every analysis of it
// afterwards replays the recording instead of re-simulating.
//
// The contract is streaming-first: a source opens a stream of decoded
// record batches (the same up-to-256-record arena batches
// tracefile.Cursor produces), and the consuming engines pull batches —
// nothing requires the stream to be materialised.  An in-memory
// recording serves O(1)-seekable cursors; a trace file or a disk-tier
// store entry decodes incrementally, so replaying an N-record file
// costs O(batch) memory; and sources compose: Concat plays several
// streams back to back, MergeWindows stitches recorded skip-windows of
// one program into a single replayable stream.
//
// Pipeline requests model fetch and execution itself and therefore
// cannot run from a recording; they reject trace sources with
// ErrTraceUnsupported.

// ErrTraceUnsupported reports a trace-backed Request of an
// execution-driven kind.  Use errors.Is to detect it.
var ErrTraceUnsupported = errors.New(
	"tlr: pipeline simulation is execution-driven and cannot run from a trace source")

// TraceSource is a recorded dynamic instruction stream, usable as a
// Request's program input for the trace-driven kinds (Study, RTM, VP).
// Implementations are *Trace, TraceFile, TraceReader, TraceRef and the
// composites Concat and MergeWindows; the interface is sealed.
type TraceSource interface {
	// describe resolves the stream's identity — cache key material,
	// provenance, record count — without replaying it.  The Batcher is
	// needed only by digest references (TraceRef), which look the
	// stream up in its store; the other sources ignore it.
	describe(b *Batcher) (streamDesc, error)

	// openStream opens one replayable pass over the recorded stream,
	// positioned at its first record.  Each replay opens its own
	// stream; the caller must Close it.
	openStream(b *Batcher) (trace.Stream, error)
}

// streamDesc is a resolved source's identity.
type streamDesc struct {
	// digest is the content digest of the stream, when it is a single
	// recording ("" for composites, which are identified by key).
	digest string
	// key is the cache identity for digest-less sources.
	key string
	// provKey is the originating program's identity ("" = the stream is
	// its own workload, keyed by digest).
	provKey string
	// base is how many leading records of the provenance identity the
	// stream already skipped (recordings made past a warm-up).
	base uint64
	// records is the number of records the stream holds.
	records uint64
	// complete reports that the stream runs to the program's halt.
	complete bool
}

// identity returns the cache key of a provenance-free stream.
func (d streamDesc) identity() string {
	if d.digest != "" {
		return "trace:" + d.digest
	}
	return d.key
}

// childIdentity names one composite child inside its parent's key.  A
// single recording is its digest; a provenance-carrying composite (a
// merged window set has no digest of its own) is the program identity
// plus the window it covers; anything else carries a composite key.
func (d streamDesc) childIdentity() string {
	if d.digest != "" {
		return d.digest
	}
	if d.key != "" {
		return d.key
	}
	return fmt.Sprintf("%s@%d+%d", d.provKey, d.base, d.records)
}

// materializer is the optional fast path for sources that already hold
// (or can cheaply produce) an in-memory Trace; Materialize uses it
// before falling back to recording the opened stream.
type materializer interface {
	resolveTrace(b *Batcher) (*Trace, error)
}

// Trace is an in-memory recorded instruction stream: the result of
// Record, ReadTrace, OpenTrace or Materialize.  It is immutable and
// safe to share across goroutines and requests.
//
// A Trace produced by Record remembers which program (and skip) it was
// recorded from, so requests backed by it share result-cache entries
// with requests naming the originating program.  Traces loaded from
// files or readers have no provenance and are cached under their
// content digest instead.
type Trace struct {
	t        *tracefile.Trace
	provKey  string // originating stream identity ("" = unknown)
	provSkip uint64 // instructions skipped before recording began
	complete bool   // recording ran to program halt
}

// Digest returns the content digest of the recorded stream, like
// "sha256:9f86d0…".  Equal streams have equal digests regardless of
// how they were recorded, stored or transported.
func (t *Trace) Digest() string { return t.t.Digest() }

// Records returns the number of recorded instructions.
func (t *Trace) Records() uint64 { return t.t.Records() }

// Size returns the in-memory encoded size of the stream in bytes (the
// plane-split v4 form a trace store holding this Trace spends).
func (t *Trace) Size() int { return t.t.Bytes() }

// CanonicalSize returns the size of the stream's canonical record
// encoding — the form the content digest covers, and what the
// uncompressed version-1/2 containers spend on the same stream.  The
// ratio Size/CanonicalSize is the in-memory win of the plane-split
// encoding.
func (t *Trace) CanonicalSize() int { return t.t.CanonicalBytes() }

// Complete reports whether the recording ran to the program's halt, in
// which case the trace covers every instruction the program can ever
// produce.
func (t *Trace) Complete() bool { return t.complete }

// WriteTo serialises the trace in the current container format
// (version 4: record count, content digest, canonical size and
// location dictionary, then the plane-split record blocks framed with
// flate — several times smaller than the canonical containers and
// several times faster to decode on reload; see docs/FORMAT.md).
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.t.WriteTo(w) }

// Save writes the trace to a file (see WriteTo).  The bytes go to a
// temporary file in the target's directory that is renamed into place,
// so a failure mid-write never leaves a truncated trace at the final
// path.
func (t *Trace) Save(path string) error { return t.t.Save(path) }

func (t *Trace) describe(*Batcher) (streamDesc, error) {
	return streamDesc{
		digest:   t.t.Digest(),
		provKey:  t.provKey,
		base:     t.provSkip,
		records:  t.t.Records(),
		complete: t.complete,
	}, nil
}

func (t *Trace) openStream(*Batcher) (trace.Stream, error) { return t.t.Cursor(), nil }

func (t *Trace) resolveTrace(*Batcher) (*Trace, error) { return t, nil }

// RecordSpec names the program to record and the stream bounds.
// Exactly one of Workload, Source or Prog must be set.
type RecordSpec struct {
	// Workload names a built-in benchmark (see Workloads).
	Workload string
	// Source is assembly text.
	Source string
	// Prog is an already-assembled program.
	Prog *Program

	// Skip is executed before recording starts; Budget is the maximum
	// number of instructions to record (required).  Recording stops
	// early at program halt, which marks the trace complete.
	Skip, Budget uint64
}

// Record executes a program on the functional simulator and captures
// its dynamic instruction stream as an in-memory Trace — the
// record/replay workflow's recording half.  A Study, RTM or VP request
// backed by the returned Trace yields results identical to the same
// request backed by the program itself (and shares its result-cache
// entries), while replaying the recording instead of re-simulating:
// record once, analyse across a whole configuration grid.
func Record(ctx context.Context, spec RecordSpec) (*Trace, error) {
	if spec.Budget == 0 {
		return nil, fmt.Errorf("tlr: Record needs a positive Budget")
	}
	progs := 0
	for _, on := range []bool{spec.Workload != "", spec.Source != "", spec.Prog != nil} {
		if on {
			progs++
		}
	}
	if progs != 1 {
		return nil, fmt.Errorf("tlr: exactly one of Workload, Source, Prog must be set (got %d)", progs)
	}

	var (
		prog    *Program
		progKey string
		err     error
	)
	switch {
	case spec.Workload != "":
		w, ok := workload.ByName(spec.Workload)
		if !ok {
			return nil, fmt.Errorf("tlr: unknown workload %q", spec.Workload)
		}
		if prog, err = w.Program(); err != nil {
			return nil, err
		}
		progKey = "workload:" + spec.Workload
	case spec.Source != "":
		if prog, err = asm.Assemble(spec.Source); err != nil {
			return nil, err
		}
		progKey = service.Fingerprint(prog)
	default:
		prog = spec.Prog
		progKey = service.Fingerprint(prog)
	}

	c := cpu.New(prog)
	if spec.Skip > 0 {
		if _, err := c.RunContext(ctx, spec.Skip, nil); err != nil {
			return nil, err
		}
	}
	rec := tracefile.NewRecorder()
	if _, err := c.RunContext(ctx, spec.Budget, rec.Write); err != nil {
		return nil, err
	}
	return &Trace{
		t:        rec.Trace(),
		provKey:  progKey,
		provSkip: spec.Skip,
		complete: c.Halted(),
	}, nil
}

// Replay runs a request against a recorded stream: sugar for setting
// req.Trace.  The request must be of a trace-driven kind (Study, RTM or
// VP) and must not name a program of its own.
func Replay(ctx context.Context, src TraceSource, req Request) (Result, error) {
	req.Trace = src
	return Run(ctx, req)
}

// ReadTrace reads and validates a complete trace from r (any container
// version).  The result carries no provenance: it is cached under its
// content digest.
func ReadTrace(r io.Reader) (*Trace, error) {
	t, err := tracefile.Load(r)
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// OpenTrace reads a trace file from disk into memory (see ReadTrace).
// Use TraceFile instead to replay the file without materialising it.
func OpenTrace(path string) (*Trace, error) {
	t, err := tracefile.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// TraceFile returns a TraceSource backed by a trace file on disk,
// replayed by streaming: every replay decodes the container
// incrementally in O(batch) memory, however long the recording is.  On
// first use the file is scanned once to compute (and, for indexed
// containers, verify) its content digest — the source's cache identity
// — so a batch of requests sharing the source validates it once.  Use
// OpenTrace to load the file into memory instead, which buys O(1)
// seeks at O(records) memory.
func TraceFile(path string) TraceSource {
	return &fileSource{path: path}
}

type fileSource struct {
	path string
	once sync.Once
	desc streamDesc
	err  error
}

func (s *fileSource) describe(*Batcher) (streamDesc, error) {
	s.once.Do(func() {
		info, err := tracefile.ScanFile(s.path)
		if err != nil {
			s.err = err
			return
		}
		s.desc = streamDesc{digest: info.Digest, records: info.Records}
	})
	return s.desc, s.err
}

func (s *fileSource) openStream(b *Batcher) (trace.Stream, error) {
	// Describing first pins the digest the file had when it entered the
	// batch; a file swapped underneath mid-batch yields decode errors or
	// divergent records, never a silently mis-keyed cache entry for the
	// original digest... the scan validates the container in full, so
	// the common corruption cases fail at describe time.
	if _, err := s.describe(b); err != nil {
		return nil, err
	}
	return tracefile.OpenFileStream(s.path)
}

// TraceReader returns a TraceSource backed by an io.Reader.  A reader
// is one-shot but a source must be replayable many times, so the
// stream is consumed into memory on first use and cached; the source
// then behaves like the loaded *Trace.
func TraceReader(r io.Reader) TraceSource {
	return &readerSource{load: func() (*Trace, error) { return ReadTrace(r) }}
}

type readerSource struct {
	load func() (*Trace, error)
	once sync.Once
	t    *Trace
	err  error
}

func (s *readerSource) resolveTrace(*Batcher) (*Trace, error) {
	s.once.Do(func() { s.t, s.err = s.load() })
	return s.t, s.err
}

func (s *readerSource) describe(b *Batcher) (streamDesc, error) {
	t, err := s.resolveTrace(b)
	if err != nil {
		return streamDesc{}, err
	}
	return t.describe(b)
}

func (s *readerSource) openStream(b *Batcher) (trace.Stream, error) {
	t, err := s.resolveTrace(b)
	if err != nil {
		return nil, err
	}
	return t.openStream(b)
}

// TraceRef returns a TraceSource addressing a trace already stored in
// the executing Batcher's trace store by content digest (see
// Batcher.StoreTrace) — upload a trace once, sweep it many times.
// Resolution falls through the store's tiers: a memory-tier hit (or a
// small disk-tier file, promoted back into memory) replays in-memory
// cursors, a large disk-tier file replays as an incrementally decoded
// stream in O(batch) memory.  cmd/tlrserve resolves these references
// against its own store, so a digest-referenced request crosses the
// wire without the trace bytes.
func TraceRef(digest string) TraceSource { return refSource(digest) }

// TraceRefDigest returns the digest a TraceRef source addresses, or ""
// for any other TraceSource.  Routing layers (cmd/tlrserve's cluster
// forwarding) use it to decide where a digest-referenced request
// should execute without resolving the reference.
func TraceRefDigest(src TraceSource) string {
	if ref, ok := src.(refSource); ok {
		return string(ref)
	}
	return ""
}

type refSource string

func (r refSource) resolve(b *Batcher) (service.TraceHandle, error) {
	if b == nil {
		return service.TraceHandle{}, fmt.Errorf("tlr: trace reference %q can only be resolved by a Batcher with a trace store", string(r))
	}
	h, ok := b.svc.ResolveTrace(string(r))
	if !ok {
		return service.TraceHandle{}, fmt.Errorf("tlr: no stored trace with digest %q (store it first with StoreTrace or POST /v1/traces)", string(r))
	}
	return h, nil
}

func (r refSource) describe(b *Batcher) (streamDesc, error) {
	h, err := r.resolve(b)
	if err != nil {
		return streamDesc{}, err
	}
	return streamDesc{digest: h.Digest, records: h.Records}, nil
}

func (r refSource) openStream(b *Batcher) (trace.Stream, error) {
	h, err := r.resolve(b)
	if err != nil {
		return nil, err
	}
	return h.Open()
}

// Concat returns a TraceSource that plays the given sources back to
// back as one stream, in order.  The composite carries no provenance
// (it is its own workload, keyed by its children's identities), and
// nothing is materialised: each child streams in turn.  Concatenating
// adjacent windows of one program reproduces the long recording
// record for record — Materialize of the composite has the same
// content digest — but for cache-key sharing with the originating
// program use MergeWindows, which checks the windows actually abut.
func Concat(sources ...TraceSource) TraceSource {
	return &concatSource{srcs: sources}
}

type concatSource struct {
	srcs []TraceSource
}

func (c *concatSource) describe(b *Batcher) (streamDesc, error) {
	if len(c.srcs) == 0 {
		return streamDesc{}, fmt.Errorf("tlr: Concat needs at least one source")
	}
	ids := make([]string, len(c.srcs))
	var records uint64
	complete := false
	for i, src := range c.srcs {
		d, err := src.describe(b)
		if err != nil {
			return streamDesc{}, fmt.Errorf("tlr: concat source %d: %w", i, err)
		}
		ids[i] = d.childIdentity()
		records += d.records
		complete = d.complete // the stream ends where the last child ends
	}
	return streamDesc{
		key:      "concat(" + strings.Join(ids, ",") + ")",
		records:  records,
		complete: complete,
	}, nil
}

func (c *concatSource) openStream(b *Batcher) (trace.Stream, error) {
	parts := make([]streamPart, len(c.srcs))
	for i, src := range c.srcs {
		parts[i] = streamPart{src: src}
	}
	return &compositeStream{b: b, parts: parts}, nil
}

// MergeWindows returns a TraceSource that stitches several recorded
// skip-windows of one program into a single replayable stream.  Every
// window must carry provenance (it must come from Record, or from
// Materialize of a merged source — file- and reader-loaded traces do
// not know their origin), all windows must name the same program, and
// sorted by their recording skip they must abut or overlap: a gap
// between consecutive windows is an error, and overlap is deduplicated
// (the later window's already-covered prefix is skipped).  The merged
// source carries the shared provenance, so requests backed by it share
// the originating program's result-cache entries, exactly as a single
// long recording would.
func MergeWindows(sources ...TraceSource) TraceSource {
	return &mergeSource{srcs: sources}
}

type mergeSource struct {
	srcs []TraceSource
}

// mergePlan is a resolved merge: the composite's identity plus the
// per-window skips a stream applies.
type mergePlan struct {
	desc  streamDesc
	parts []streamPart
}

func (m *mergeSource) plan(b *Batcher) (mergePlan, error) {
	if len(m.srcs) == 0 {
		return mergePlan{}, fmt.Errorf("tlr: MergeWindows needs at least one source")
	}
	type window struct {
		src  TraceSource
		desc streamDesc
	}
	wins := make([]window, len(m.srcs))
	for i, src := range m.srcs {
		d, err := src.describe(b)
		if err != nil {
			return mergePlan{}, fmt.Errorf("tlr: merge window %d: %w", i, err)
		}
		if d.provKey == "" {
			return mergePlan{}, fmt.Errorf(
				"tlr: merge window %d carries no provenance; MergeWindows stitches recordings (from Record) of one program — use Concat to chain arbitrary streams", i)
		}
		if i > 0 && d.provKey != wins[0].desc.provKey {
			return mergePlan{}, fmt.Errorf("tlr: merge windows span different programs (%q vs %q)",
				wins[0].desc.provKey, d.provKey)
		}
		wins[i] = window{src: src, desc: d}
	}
	sort.SliceStable(wins, func(i, j int) bool { return wins[i].desc.base < wins[j].desc.base })

	p := mergePlan{desc: streamDesc{
		provKey: wins[0].desc.provKey,
		base:    wins[0].desc.base,
	}}
	pos := wins[0].desc.base // coverage end so far
	complete := false
	for i, w := range wins {
		if w.desc.base > pos {
			return mergePlan{}, fmt.Errorf(
				"tlr: merge windows leave a gap: coverage ends at record %d but the next window starts at %d", pos, w.desc.base)
		}
		end := w.desc.base + w.desc.records
		if end <= pos && !w.desc.complete {
			continue // fully covered by earlier windows
		}
		skip := pos - w.desc.base
		if skip < w.desc.records {
			p.parts = append(p.parts, streamPart{src: wins[i].src, skip: skip})
			pos = end
		}
		if w.desc.complete {
			complete = true
		}
	}
	p.desc.records = pos - p.desc.base
	p.desc.complete = complete
	return p, nil
}

func (m *mergeSource) describe(b *Batcher) (streamDesc, error) {
	p, err := m.plan(b)
	return p.desc, err
}

func (m *mergeSource) openStream(b *Batcher) (trace.Stream, error) {
	p, err := m.plan(b)
	if err != nil {
		return nil, err
	}
	return &compositeStream{b: b, parts: p.parts}, nil
}

// streamPart is one child of a composite stream: a source plus the
// records to skip at its start (overlap deduplication).
type streamPart struct {
	src  TraceSource
	skip uint64
}

// compositeStream plays a sequence of parts as one trace.Stream,
// opening each child lazily and closing it when drained, so at most
// one child stream is resident at a time.
type compositeStream struct {
	b     *Batcher
	parts []streamPart
	idx   int
	cur   trace.Stream
}

// next ensures a current child stream, opening (and pre-skipping) the
// next part; it returns io.EOF once every part is drained.
func (s *compositeStream) next() error {
	for s.cur == nil {
		if s.idx >= len(s.parts) {
			return io.EOF
		}
		p := s.parts[s.idx]
		st, err := p.src.openStream(s.b)
		if err != nil {
			return err
		}
		if p.skip > 0 {
			if _, err := st.Skip(p.skip); err != nil {
				st.Close()
				return err
			}
		}
		s.cur = st
	}
	return nil
}

func (s *compositeStream) NextBatch() ([]trace.Exec, error) {
	for {
		if err := s.next(); err != nil {
			return nil, err
		}
		batch, err := s.cur.NextBatch()
		if err == io.EOF {
			s.cur.Close()
			s.cur = nil
			s.idx++
			continue
		}
		return batch, err
	}
}

func (s *compositeStream) Skip(n uint64) (uint64, error) {
	var done uint64
	for done < n {
		if err := s.next(); err == io.EOF {
			return done, nil
		} else if err != nil {
			return done, err
		}
		want := n - done
		k, err := s.cur.Skip(want)
		done += k
		if err != nil {
			return done, err
		}
		if k < want {
			// The child ended inside the skip: move on to the next part.
			s.cur.Close()
			s.cur = nil
			s.idx++
		}
	}
	return done, nil
}

func (s *compositeStream) Close() {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	s.idx = len(s.parts)
}

// traceSource maps a TraceSource onto the factory serviceJob uses to
// build the job's service input and its effective skip.
//
// A provenance-carrying stream is keyed as the originating program,
// with the recording's own skip folded in — so a request backed by the
// recording and the same request backed by the program hit the same
// result-cache entry.  That keying is only sound when the replay is
// guaranteed to retire exactly what live execution would: the stream
// must cover skip+budget records or have run to halt.  (Reuse overshoot
// past the budget never reads the stream, so no extra margin is needed;
// see rtm.Replay.)  An undercovering recording is an error rather than
// a silently shorter answer.
//
// A stream without provenance is its own workload, keyed by digest (or
// by composite identity); the stream simply ends where the recording
// ends.
func (b *Batcher) traceSource(src TraceSource) (func(skip, budget uint64) (service.Source, uint64, error), error) {
	d, err := src.describe(b)
	if err != nil {
		return nil, err
	}
	open := func() (trace.Stream, error) { return src.openStream(b) }
	return func(skip, budget uint64) (service.Source, uint64, error) {
		if d.provKey != "" {
			if !d.complete && (skip > d.records || budget > d.records-skip) {
				return service.Source{}, 0, fmt.Errorf(
					"tlr: recorded stream holds %d records but the request needs skip+budget = %d and the recording did not run to halt; record a longer trace, or save and reload it to analyse the stream as-is",
					d.records, skip+budget)
			}
			// The job's Skip is identity-relative (base folded in) so the
			// cache key matches the program-backed request exactly; replay
			// subtracts the recording's own skip again when positioning
			// the stream (service.Source.base).
			return service.StreamSource(d.provKey, d.base, open), d.base + skip, nil
		}
		return service.StreamSource(d.identity(), 0, open), skip, nil
	}, nil
}

// Materialize resolves any TraceSource into an in-memory Trace,
// replaying (and re-encoding) the stream when the source is not
// already memory-backed.  Provenance survives: materialising a
// MergeWindows composite yields a Trace that behaves exactly like one
// long recording of the program, cache sharing included.  Sources that
// need a store (TraceRef) must be materialised through their Batcher's
// Materialize method.
func Materialize(src TraceSource) (*Trace, error) { return materialize(nil, src) }

// Materialize resolves any TraceSource into an in-memory Trace against
// this Batcher (so TraceRef digests resolve in its store); see the
// package-level Materialize.
func (b *Batcher) Materialize(src TraceSource) (*Trace, error) { return materialize(b, src) }

func materialize(b *Batcher, src TraceSource) (*Trace, error) {
	if m, ok := src.(materializer); ok {
		return m.resolveTrace(b)
	}
	d, err := src.describe(b)
	if err != nil {
		return nil, err
	}
	st, err := src.openStream(b)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rec := tracefile.NewRecorder()
	for {
		batch, err := st.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := range batch {
			rec.Write(&batch[i])
		}
	}
	return &Trace{
		t:        rec.Trace(),
		provKey:  d.provKey,
		provSkip: d.base,
		complete: d.complete,
	}, nil
}

// StoreTrace materialises src and registers it in the Batcher's
// digest-addressed trace store, returning the digest.  Requests
// carrying TraceRef(digest) then replay it without re-supplying the
// bytes.  The store's memory tier is LRU-bounded by total bytes, and
// with a disk tier configured (BatchOptions.TraceDir) the trace is
// also written through to its digest-named file.  To store a trace
// container without materialising it, use StoreTraceFrom.
func (b *Batcher) StoreTrace(src TraceSource) (string, error) {
	if ref, ok := src.(refSource); ok {
		// Storing a reference to an already-stored trace is idempotent:
		// answer from the store instead of replaying and re-hashing the
		// whole stream to recompute a digest the store already knows.
		h, err := ref.resolve(b)
		if err != nil {
			return "", err
		}
		return h.Digest, nil
	}
	t, err := b.Materialize(src)
	if err != nil {
		return "", err
	}
	return b.svc.AddTrace(t.t), nil
}

// StoreTraceFrom stores a trace read from a container stream (any
// version), validating and digesting it incrementally.  With a disk
// tier (BatchOptions.TraceDir) the bytes spool straight to the
// digest-named file and the trace is never materialised, so
// arbitrarily long streams cost O(batch) memory — this is the library
// face of cmd/tlrserve's chunked POST /v1/traces upload.  Without a
// disk tier the trace is decoded into the memory tier, as StoreTrace
// would.
func (b *Batcher) StoreTraceFrom(r io.Reader) (TraceInfo, error) {
	return b.svc.AddTraceStream(r)
}

// TraceInfo describes one trace in a Batcher's store.
type TraceInfo = service.TraceInfo

// Traces lists the Batcher's stored traces: the memory tier most
// recently used first, then disk-only traces.
func (b *Batcher) Traces() []TraceInfo { return b.svc.Traces() }

// HasTrace reports whether the digest resolves from the Batcher's
// local store tiers alone — it never triggers a peer fetch and counts
// no hit/miss statistics, so routing layers can probe placement
// cheaply before deciding to forward or pull.
func (b *Batcher) HasTrace(digest string) bool { return b.svc.HasTrace(digest) }

// TraceByDigest returns the stored trace for a content digest, or
// false if the store does not hold it (never stored, or evicted from
// every tier).  A disk-only trace is materialised into memory; to
// replay a stored trace without materialising it, run a request
// backed by TraceRef(digest), and to copy its bytes use WriteTraceTo.
func (b *Batcher) TraceByDigest(digest string) (*Trace, bool) {
	t, ok := b.svc.TraceByDigest(digest)
	if !ok {
		return nil, false
	}
	return &Trace{t: t}, true
}

// WriteTraceTo streams the stored trace for a digest to w as a
// version-4 trace file, serving the memory tier's encoding or copying
// the disk tier's file without decoding it (cmd/tlrserve's
// GET /v1/traces/{digest} download is this call).  It reports the
// bytes written and whether the digest was found; an error with zero
// bytes written means nothing reached w.
func (b *Batcher) WriteTraceTo(digest string, w io.Writer) (int64, bool, error) {
	return b.svc.WriteTraceTo(digest, w)
}
