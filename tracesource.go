package tlr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/tracereuse/tlr/internal/asm"
	"github.com/tracereuse/tlr/internal/cpu"
	"github.com/tracereuse/tlr/internal/service"
	"github.com/tracereuse/tlr/internal/tracefile"
	"github.com/tracereuse/tlr/internal/workload"
)

// First-class trace sources: the paper's toolflow was trace-driven —
// ATOM-instrumented binaries produced dynamic trace files that the
// reuse engines analysed offline — and this file makes that stream a
// public, pluggable Request input.  A TraceSource stands in for the
// program in the trace-driven request kinds (Study, RTM, VP): Record
// captures a program's dynamic stream once, and every analysis of it
// afterwards replays the recording instead of re-simulating.  Sources
// come in four shapes — an in-memory recording, a trace file on disk,
// an arbitrary io.Reader, and a digest reference into a Batcher's (or
// tlrserve's) trace store.
//
// Pipeline requests model fetch and execution itself and therefore
// cannot run from a recording; they reject trace sources with
// ErrTraceUnsupported.

// ErrTraceUnsupported reports a trace-backed Request of an
// execution-driven kind.  Use errors.Is to detect it.
var ErrTraceUnsupported = errors.New(
	"tlr: pipeline simulation is execution-driven and cannot run from a trace source")

// TraceSource is a recorded dynamic instruction stream, usable as a
// Request's program input for the trace-driven kinds (Study, RTM, VP).
// The four implementations are *Trace, TraceFile, TraceReader and
// TraceRef; the interface is sealed.
type TraceSource interface {
	// resolveTrace materialises the in-memory trace.  The Batcher is
	// needed only by digest references (TraceRef), which look the trace
	// up in its store; the other sources ignore it.
	resolveTrace(b *Batcher) (*Trace, error)
}

// Trace is an in-memory recorded instruction stream: the result of
// Record, ReadTrace or OpenTrace.  It is immutable and safe to share
// across goroutines and requests.
//
// A Trace produced by Record remembers which program (and skip) it was
// recorded from, so requests backed by it share result-cache entries
// with requests naming the originating program.  Traces loaded from
// files or readers have no provenance and are cached under their
// content digest instead.
type Trace struct {
	t        *tracefile.Trace
	provKey  string // originating stream identity ("" = unknown)
	provSkip uint64 // instructions skipped before recording began
	complete bool   // recording ran to program halt
}

// Digest returns the content digest of the recorded stream, like
// "sha256:9f86d0…".  Equal streams have equal digests regardless of
// how they were recorded, stored or transported.
func (t *Trace) Digest() string { return t.t.Digest() }

// Records returns the number of recorded instructions.
func (t *Trace) Records() uint64 { return t.t.Records() }

// Size returns the in-memory encoded size of the stream in bytes (the
// delta-encoded v3 form a trace store holding this Trace spends).
func (t *Trace) Size() int { return t.t.Bytes() }

// CanonicalSize returns the size of the stream's canonical record
// encoding — the form the content digest covers, and what the
// uncompressed version-1/2 containers spend on the same stream.  The
// ratio Size/CanonicalSize is the in-memory win of the delta encoding.
func (t *Trace) CanonicalSize() int { return t.t.CanonicalBytes() }

// Complete reports whether the recording ran to the program's halt, in
// which case the trace covers every instruction the program can ever
// produce.
func (t *Trace) Complete() bool { return t.complete }

// WriteTo serialises the trace in the current container format
// (version 3: record count, content digest, canonical size and
// location dictionary, then the delta-encoded records framed with
// flate — several times smaller than the canonical containers and
// faster to decode on reload).
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.t.WriteTo(w) }

// Save writes the trace to a file (see WriteTo).
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (t *Trace) resolveTrace(*Batcher) (*Trace, error) { return t, nil }

// source maps a stream-relative (skip, budget) request onto the
// service input and its effective skip.
//
// A provenance-carrying trace is keyed as the originating program, with
// the recording's own skip folded in — so a request backed by the
// recording and the same request backed by the program hit the same
// result-cache entry.  That keying is only sound when the replay is
// guaranteed to retire exactly what live execution would: the trace
// must cover skip+budget records or have run to halt.  (Reuse overshoot
// past the budget never reads the stream, so no extra margin is
// needed; see rtm.Replay.)  An undercovering recording is an error
// rather than a silently shorter answer.
//
// A trace without provenance is its own workload, keyed by digest; the
// stream simply ends where the recording ends.
func (t *Trace) source(skip, budget uint64) (service.Source, uint64, error) {
	if t.provKey != "" {
		if n := t.t.Records(); !t.complete && (skip > n || budget > n-skip) {
			return service.Source{}, 0, fmt.Errorf(
				"tlr: recorded trace holds %d records but the request needs skip+budget = %d and the recording did not run to halt; record a longer trace, or save and reload it to analyse the stream as-is",
				n, skip+budget)
		}
		// The job's Skip is identity-relative (provSkip folded in) so the
		// cache key matches the program-backed request exactly; replay
		// subtracts the recording's own skip again when positioning the
		// cursor (service.Source.base).
		return service.TraceSource(t.provKey, t.t, t.provSkip), t.provSkip + skip, nil
	}
	return service.TraceSource("trace:"+t.t.Digest(), t.t, 0), skip, nil
}

// RecordSpec names the program to record and the stream bounds.
// Exactly one of Workload, Source or Prog must be set.
type RecordSpec struct {
	// Workload names a built-in benchmark (see Workloads).
	Workload string
	// Source is assembly text.
	Source string
	// Prog is an already-assembled program.
	Prog *Program

	// Skip is executed before recording starts; Budget is the maximum
	// number of instructions to record (required).  Recording stops
	// early at program halt, which marks the trace complete.
	Skip, Budget uint64
}

// Record executes a program on the functional simulator and captures
// its dynamic instruction stream as an in-memory Trace — the
// record/replay workflow's recording half.  A Study, RTM or VP request
// backed by the returned Trace yields results identical to the same
// request backed by the program itself (and shares its result-cache
// entries), while replaying the recording instead of re-simulating:
// record once, analyse across a whole configuration grid.
func Record(ctx context.Context, spec RecordSpec) (*Trace, error) {
	if spec.Budget == 0 {
		return nil, fmt.Errorf("tlr: Record needs a positive Budget")
	}
	progs := 0
	for _, on := range []bool{spec.Workload != "", spec.Source != "", spec.Prog != nil} {
		if on {
			progs++
		}
	}
	if progs != 1 {
		return nil, fmt.Errorf("tlr: exactly one of Workload, Source, Prog must be set (got %d)", progs)
	}

	var (
		prog    *Program
		progKey string
		err     error
	)
	switch {
	case spec.Workload != "":
		w, ok := workload.ByName(spec.Workload)
		if !ok {
			return nil, fmt.Errorf("tlr: unknown workload %q", spec.Workload)
		}
		if prog, err = w.Program(); err != nil {
			return nil, err
		}
		progKey = "workload:" + spec.Workload
	case spec.Source != "":
		if prog, err = asm.Assemble(spec.Source); err != nil {
			return nil, err
		}
		progKey = service.Fingerprint(prog)
	default:
		prog = spec.Prog
		progKey = service.Fingerprint(prog)
	}

	c := cpu.New(prog)
	if spec.Skip > 0 {
		if _, err := c.RunContext(ctx, spec.Skip, nil); err != nil {
			return nil, err
		}
	}
	rec := tracefile.NewRecorder()
	if _, err := c.RunContext(ctx, spec.Budget, rec.Write); err != nil {
		return nil, err
	}
	return &Trace{
		t:        rec.Trace(),
		provKey:  progKey,
		provSkip: spec.Skip,
		complete: c.Halted(),
	}, nil
}

// Replay runs a request against a recorded stream: sugar for setting
// req.Trace.  The request must be of a trace-driven kind (Study, RTM or
// VP) and must not name a program of its own.
func Replay(ctx context.Context, src TraceSource, req Request) (Result, error) {
	req.Trace = src
	return Run(ctx, req)
}

// ReadTrace reads and validates a complete trace from r (either
// container version).  The result carries no provenance: it is cached
// under its content digest.
func ReadTrace(r io.Reader) (*Trace, error) {
	t, err := tracefile.Load(r)
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// OpenTrace reads a trace file from disk (see ReadTrace).
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// TraceFile returns a TraceSource backed by a trace file on disk.  The
// file is read and validated on first use and cached, so a batch of
// requests sharing the source parses it once.
func TraceFile(path string) TraceSource {
	return &lazySource{load: func() (*Trace, error) { return OpenTrace(path) }}
}

// TraceReader returns a TraceSource backed by an io.Reader.  The
// stream is consumed on first use and cached.
func TraceReader(r io.Reader) TraceSource {
	return &lazySource{load: func() (*Trace, error) { return ReadTrace(r) }}
}

type lazySource struct {
	load func() (*Trace, error)
	once sync.Once
	t    *Trace
	err  error
}

func (s *lazySource) resolveTrace(*Batcher) (*Trace, error) {
	s.once.Do(func() { s.t, s.err = s.load() })
	return s.t, s.err
}

// TraceRef returns a TraceSource addressing a trace already stored in
// the executing Batcher's trace store by content digest (see
// Batcher.StoreTrace) — upload a trace once, sweep it many times.
// cmd/tlrserve resolves these references against its own store, so a
// digest-referenced request crosses the wire without the trace bytes.
func TraceRef(digest string) TraceSource { return refSource(digest) }

type refSource string

func (r refSource) resolveTrace(b *Batcher) (*Trace, error) {
	if b == nil {
		return nil, fmt.Errorf("tlr: trace reference %q can only be resolved by a Batcher with a trace store", string(r))
	}
	t, ok := b.svc.TraceByDigest(string(r))
	if !ok {
		return nil, fmt.Errorf("tlr: no stored trace with digest %q (store it first with StoreTrace or POST /v1/traces)", string(r))
	}
	return &Trace{t: t}, nil
}

// StoreTrace resolves src and registers it in the Batcher's
// digest-addressed trace store, returning the digest.  Requests
// carrying TraceRef(digest) then replay it without re-supplying the
// bytes.  The store is LRU-bounded by total bytes (see BatchOptions).
func (b *Batcher) StoreTrace(src TraceSource) (string, error) {
	t, err := src.resolveTrace(b)
	if err != nil {
		return "", err
	}
	return b.svc.AddTrace(t.t), nil
}

// TraceInfo describes one trace in a Batcher's store.
type TraceInfo = service.TraceInfo

// Traces lists the Batcher's stored traces, most recently used first.
func (b *Batcher) Traces() []TraceInfo { return b.svc.Traces() }

// TraceByDigest returns the stored trace for a content digest, or
// false if the store does not hold it (never stored, or evicted).  The
// returned Trace is the same immutable object the store serves to
// TraceRef-backed requests, so it can be replayed, saved or re-served
// (cmd/tlrserve's GET /v1/traces/{digest} download is this call plus
// WriteTo).
func (b *Batcher) TraceByDigest(digest string) (*Trace, bool) {
	t, ok := b.svc.TraceByDigest(digest)
	if !ok {
		return nil, false
	}
	return &Trace{t: t}, true
}
