package tlr

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRunBatchAllFourKinds submits one request of every kind in a single
// batch and checks each result carries exactly its kind's payload.
func TestRunBatchAllFourKinds(t *testing.T) {
	b := NewBatcher(BatchOptions{Workers: 4})
	defer b.Close()
	reqs := []Request{
		{ID: "study", Workload: "li", Study: &StudyConfig{Budget: 8_000, Window: 256}},
		{ID: "rtm", Workload: "li", RTM: &RTMConfig{Geometry: Geometry512, Heuristic: ILREXP},
			Skip: 500, Budget: 8_000},
		{ID: "pipe", Workload: "li", Pipeline: &PipelineConfig{}, Budget: 8_000},
		{ID: "vp", Workload: "li", VP: &VPConfig{Window: 256}, Budget: 8_000},
	}
	res, err := b.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{KindStudy, KindRTM, KindPipeline, KindVP}
	for i, r := range res {
		if r.Kind != wantKinds[i] {
			t.Errorf("result %d: kind %q, want %q", i, r.Kind, wantKinds[i])
		}
		set := 0
		for _, on := range []bool{r.Study != nil, r.RTM != nil, r.Pipeline != nil, r.VP != nil} {
			if on {
				set++
			}
		}
		if set != 1 {
			t.Errorf("result %d: %d payloads set, want exactly 1", i, set)
		}
	}
	if res[0].Study.ILR.Instructions != 8_000 {
		t.Errorf("study instructions = %d", res[0].Study.ILR.Instructions)
	}
	if res[1].RTM.Total() < 8_000 {
		t.Errorf("rtm total = %d", res[1].RTM.Total())
	}
	if res[2].Pipeline.Retired < 8_000 || res[2].Pipeline.IPC() <= 0 {
		t.Errorf("pipeline result %+v", res[2].Pipeline)
	}
	if res[3].VP.Instructions != 8_000 {
		t.Errorf("vp instructions = %d", res[3].VP.Instructions)
	}
}

// TestRunMatchesDeprecatedWrappers: the unified entry point and the
// deprecated facade functions agree exactly (they share one compute
// path).
func TestRunMatchesDeprecatedWrappers(t *testing.T) {
	w, _ := WorkloadByName("compress")
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	old, err := MeasureReuse(prog, StudyConfig{Budget: 8_000, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, Request{Prog: prog, Study: &StudyConfig{Budget: 8_000, Window: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if old.TLR.Speedups[0] != res.Study.TLR.Speedups[0] {
		t.Errorf("study: wrapper %v != Run %v", old.TLR.Speedups[0], res.Study.TLR.Speedups[0])
	}

	oldVP, err := MeasureValuePrediction(prog, StudyConfig{Budget: 8_000, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	resVP, err := Run(ctx, Request{Prog: prog, VP: &VPConfig{Window: 256}, Budget: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	if oldVP.Speedup != resVP.VP.Speedup {
		t.Errorf("vp: wrapper %v != Run %v", oldVP.Speedup, resVP.VP.Speedup)
	}
}

// TestPipelineAndVPCacheAndCoalesce: the two kinds new to the batch
// service hit the result cache across batches and coalesce identical
// in-flight requests within one.
func TestPipelineAndVPCacheAndCoalesce(t *testing.T) {
	for _, kind := range []struct {
		name string
		req  Request
	}{
		{"pipeline", Request{Workload: "li",
			Pipeline: &PipelineConfig{RTM: &RTMConfig{Geometry: Geometry512}}, Budget: 8_000}},
		{"vp", Request{Workload: "li", VP: &VPConfig{Window: 256}, Budget: 8_000}},
	} {
		t.Run(kind.name, func(t *testing.T) {
			b := NewBatcher(BatchOptions{Workers: 4})
			defer b.Close()
			// Two identical requests in one batch: one simulation, the
			// other folded onto it (coalesced or answered from cache).
			res, err := b.RunBatch(context.Background(), []Request{kind.req, kind.req})
			if err != nil {
				t.Fatal(err)
			}
			if !res[0].Cached && !res[1].Cached {
				t.Errorf("identical in-flight requests should share one simulation: %+v", b.Stats())
			}
			st := b.Stats()
			if st.Ran != 1 {
				t.Errorf("Ran = %d, want 1", st.Ran)
			}
			if st.CacheHits+st.Coalesced != 1 {
				t.Errorf("CacheHits+Coalesced = %d, want 1", st.CacheHits+st.Coalesced)
			}
			// A later identical batch is answered entirely from cache.
			res2, err := b.RunBatch(context.Background(), []Request{kind.req})
			if err != nil {
				t.Fatal(err)
			}
			if !res2[0].Cached {
				t.Error("second batch should hit the result cache")
			}
			if b.Stats().Ran != 1 {
				t.Errorf("second batch re-simulated: %+v", b.Stats())
			}
			switch kind.name {
			case "pipeline":
				if res[0].Pipeline.IPC() != res2[0].Pipeline.IPC() {
					t.Error("cached pipeline result differs")
				}
			case "vp":
				if res[0].VP.Speedup != res2[0].VP.Speedup {
					t.Error("cached vp result differs")
				}
			}
		})
	}
}

// TestRunBatchJoinsAllErrors: a batch with several failing requests
// reports every failure in the returned error, not just the first.
func TestRunBatchJoinsAllErrors(t *testing.T) {
	b := NewBatcher(BatchOptions{Workers: 2})
	defer b.Close()
	_, err := b.RunBatch(context.Background(), []Request{
		{Workload: "nope1", VP: &VPConfig{}, Budget: 100},
		{Workload: "li", VP: &VPConfig{}, Budget: 100},
		{Workload: "nope2", VP: &VPConfig{}, Budget: 100},
	})
	if err == nil {
		t.Fatal("expected validation errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nope1") || !strings.Contains(msg, "nope2") {
		t.Errorf("error should name both bad requests: %v", msg)
	}
}

// TestRequestValidation: malformed requests fail the batch before any
// simulation starts.
func TestRequestValidation(t *testing.T) {
	b := NewBatcher(BatchOptions{Workers: 1})
	defer b.Close()
	bad := []Request{
		{VP: &VPConfig{}, Budget: 100}, // no program
		{Workload: "compress"},         // no config
		{Workload: "compress", Source: "x", VP: &VPConfig{}, Budget: 100},                                            // two programs
		{Workload: "compress", VP: &VPConfig{}, RTM: &RTMConfig{}, Budget: 100},                                      // two configs
		{Workload: "compress", VP: &VPConfig{}},                                                                      // no budget
		{Workload: "compress", Pipeline: &PipelineConfig{}},                                                          // no budget
		{Workload: "compress", Pipeline: &PipelineConfig{RTM: &RTMConfig{Geometry: Geometry{Sets: 3}}}, Budget: 100}, // bad geometry
		{Workload: "compress", RTM: &RTMConfig{Geometry: Geometry512}},                                               // no budget
		{Workload: "compress", Study: &StudyConfig{Budget: 100}, Budget: 50},                                         // both budgets
		{Workload: "compress", Study: &StudyConfig{Skip: 500}, Budget: 50},                                           // Study.Skip would be silently lost
	}
	for i, req := range bad {
		if _, err := b.RunBatch(context.Background(), []Request{req}); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if st := b.Stats(); st.Ran != 0 {
		t.Errorf("validation failures must not simulate: %+v", st)
	}
}

// TestStreamBatchCancellation cancels a context mid-batch and checks the
// three contracted behaviours: the stream still delivers exactly one
// result per request and closes promptly, requests that never reached a
// worker are marked with ctx.Err(), and no goroutines are leaked
// (bracketed with runtime.NumGoroutine).
func TestStreamBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	b := NewBatcher(BatchOptions{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	// One worker, several long simulations: without cancellation this
	// batch takes minutes; the budget is deliberately outsized so a
	// cancellation regression fails the test by timeout.
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{
			ID: string(rune('a' + i)), Workload: "li",
			RTM:    &RTMConfig{Geometry: Geometry4K, Heuristic: ILREXP},
			Budget: 500_000_000,
		}
	}
	stream, err := b.StreamBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the first simulation start
	start := time.Now()
	cancel()

	got := 0
	cancelled := 0
	for r := range stream {
		got++
		if r.Err == nil {
			t.Errorf("request %s finished despite cancellation", r.ID)
		} else if errors.Is(r.Err, context.Canceled) {
			cancelled++
		} else {
			t.Errorf("request %s: unexpected error %v", r.ID, r.Err)
		}
	}
	elapsed := time.Since(start)
	if got != len(reqs) {
		t.Errorf("received %d results, want %d", got, len(reqs))
	}
	if cancelled != len(reqs) {
		t.Errorf("%d results marked with ctx.Err(), want %d", cancelled, len(reqs))
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if st := b.Stats(); st.Ran != 0 {
		t.Errorf("cancelled batch counted %d completed simulations", st.Ran)
	}
	b.Close()

	// Goroutine bracketing: everything the batch and batcher spawned
	// must wind down.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchCancelStopsRunningSimulation: Batch-level cancellation (via
// Run with a cancelled context) stops a single in-flight simulation
// mid-run rather than waiting for its budget.
func TestRunHonoursContextMidSimulation(t *testing.T) {
	b := NewBatcher(BatchOptions{Workers: 1})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() {
		res, _ := b.Run(ctx, Request{
			Workload: "li", Study: &StudyConfig{Budget: 2_000_000_000},
		})
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Run did not return promptly")
	}
}
