package tlr

// Tests for the streaming-first TraceSource contract: composite
// sources (Concat, MergeWindows), streamed (file- and disk-tier-
// backed) replay equivalence across the RTM configuration grid, the
// two-tier trace store, and the trace-driven DDA path.

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestConcatOfWindowsEqualsLongRecording: concatenating two adjacent
// recorded windows of one program reproduces the single long recording
// — record for record (equal analysis results) and digest for digest
// (Materialize of the composite has the long recording's content
// digest), with nothing materialised during replay.
func TestConcatOfWindowsEqualsLongRecording(t *testing.T) {
	const half, whole = 20_000, 40_000
	ctx := context.Background()
	long, err := Record(ctx, RecordSpec{Workload: "compress", Budget: whole})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := Record(ctx, RecordSpec{Workload: "compress", Budget: half})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Record(ctx, RecordSpec{Workload: "compress", Skip: half, Budget: whole - half})
	if err != nil {
		t.Fatal(err)
	}

	cat := Concat(w1, w2)
	mat, err := Materialize(cat)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Digest() != long.Digest() || mat.Records() != long.Records() {
		t.Fatalf("Concat materialises to %s/%d, long recording is %s/%d",
			mat.Digest(), mat.Records(), long.Digest(), long.Records())
	}

	// The composite replays like the long recording for every
	// trace-driven kind.  The two carry different cache keys (composite
	// identity vs recording provenance), so both actually simulate.
	b := NewBatcher(BatchOptions{})
	defer b.Close()
	reqs := func(src TraceSource) []Request {
		return []Request{
			{ID: "study", Trace: src, Study: &StudyConfig{Budget: 30_000, Skip: 5_000, Window: 256}},
			{ID: "rtm", Trace: src, RTM: &RTMConfig{Geometry: Geometry4K, Heuristic: ILREXP}, Skip: 5_000, Budget: 30_000},
			{ID: "vp", Trace: src, VP: &VPConfig{Window: 256}, Skip: 5_000, Budget: 30_000},
		}
	}
	fromLong, err := b.RunBatch(ctx, reqs(long))
	if err != nil {
		t.Fatal(err)
	}
	fromCat, err := b.RunBatch(ctx, reqs(cat))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromLong {
		if fromCat[i].Cached {
			t.Errorf("%s: composite unexpectedly shared the recording's cache entry", fromCat[i].ID)
		}
		if !reflect.DeepEqual(payload(fromLong[i]), payload(fromCat[i])) {
			t.Errorf("%s: concat replay differs from the long recording:\nlong   %+v\nconcat %+v",
				fromLong[i].ID, payload(fromLong[i]), payload(fromCat[i]))
		}
	}
}

// TestMergeWindowsStitchesAndSharesCache: overlapping recorded
// skip-windows of one program merge into a provenance-carrying stream
// that shares the originating program's result-cache entries and
// materialises to the long recording's digest; gaps and
// provenance-less windows are rejected.
func TestMergeWindowsStitchesAndSharesCache(t *testing.T) {
	ctx := context.Background()
	long, err := Record(ctx, RecordSpec{Workload: "compress", Budget: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := Record(ctx, RecordSpec{Workload: "compress", Budget: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Record(ctx, RecordSpec{Workload: "compress", Skip: 20_000, Budget: 20_000})
	if err != nil {
		t.Fatal(err)
	}

	// Window order must not matter; overlap ([20k,30k) twice) must
	// deduplicate.
	merged := MergeWindows(w2, w1)
	mat, err := Materialize(merged)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Digest() != long.Digest() || mat.Records() != long.Records() {
		t.Fatalf("merged windows materialise to %s/%d, long recording is %s/%d",
			mat.Digest(), mat.Records(), long.Digest(), long.Records())
	}
	if !mat.Complete() == long.Complete() {
		t.Errorf("merged completeness %v, long recording %v", mat.Complete(), long.Complete())
	}

	// Provenance survives the merge: the program-backed request's cache
	// entry answers the merged-backed request, and vice versa on a cold
	// Batcher.
	b := NewBatcher(BatchOptions{})
	defer b.Close()
	prog := Request{ID: "study", Workload: "compress", Study: &StudyConfig{Budget: 30_000, Skip: 2_000, Window: 256}}
	viaProg, err := b.Run(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	viaMerge, err := b.Run(ctx, Request{ID: "study", Trace: merged, Study: &StudyConfig{Budget: 30_000, Skip: 2_000, Window: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if !viaMerge.Cached {
		t.Error("merged-window request missed the program-backed cache entry")
	}
	if !reflect.DeepEqual(*viaProg.Study, *viaMerge.Study) {
		t.Errorf("merged replay differs from execution:\nlive  %+v\nmerge %+v", *viaProg.Study, *viaMerge.Study)
	}
	cold := NewBatcher(BatchOptions{})
	defer cold.Close()
	viaMergeCold, err := cold.Run(ctx, Request{Trace: merged, Study: &StudyConfig{Budget: 30_000, Skip: 2_000, Window: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if viaMergeCold.Cached {
		t.Error("cold merged replay unexpectedly cached")
	}
	if !reflect.DeepEqual(*viaProg.Study, *viaMergeCold.Study) {
		t.Error("cold merged replay differs from execution")
	}

	// An undercovering merge is rejected like an undercovering
	// recording (the merged stream holds 40k records).
	if long.Complete() {
		t.Skip("compress halted inside 40k instructions; coverage/gap cases not testable")
	}
	if _, err := b.Run(ctx, Request{Trace: merged, Study: &StudyConfig{Budget: 50_000}}); err == nil ||
		!strings.Contains(err.Error(), "skip+budget") {
		t.Errorf("undercovering merge: err = %v", err)
	}

	// A gap between windows is an error.
	w3, err := Record(ctx, RecordSpec{Workload: "compress", Skip: 45_000, Budget: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(ctx, Request{Trace: MergeWindows(w1, w3), Study: &StudyConfig{Budget: 1_000}}); err == nil ||
		!strings.Contains(err.Error(), "gap") {
		t.Errorf("gapped merge: err = %v", err)
	}

	// Windows must carry provenance (a reloaded file does not).
	var buf bytes.Buffer
	if _, err := w1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(ctx, Request{Trace: MergeWindows(loaded, w2), Study: &StudyConfig{Budget: 1_000}}); err == nil ||
		!strings.Contains(err.Error(), "provenance") {
		t.Errorf("provenance-less merge: err = %v", err)
	}
	// Different programs do not merge.
	other, err := Record(ctx, RecordSpec{Workload: "li", Budget: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(ctx, Request{Trace: MergeWindows(w1, other), Study: &StudyConfig{Budget: 1_000}}); err == nil ||
		!strings.Contains(err.Error(), "different programs") {
		t.Errorf("cross-program merge: err = %v", err)
	}
}

// TestStreamedReplayEquivalenceAcrossGrid is the satellite coverage
// contract: replay through every streaming path — the in-memory
// recording, the file decoded incrementally, and a disk-tier store
// entry — is byte-identical to live execution across all RTM
// heuristics and geometries (plus the other trace-driven kinds).
func TestStreamedReplayEquivalenceAcrossGrid(t *testing.T) {
	const skip, budget = 2_000, 20_000
	ctx := context.Background()
	rec, err := Record(ctx, RecordSpec{Workload: "compress", Budget: skip + budget})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rec.trc")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}

	var reqs []Request
	add := func(r Request, src TraceSource) Request {
		if src != nil {
			r.Trace = src
		} else {
			r.Workload = "compress"
		}
		return r
	}
	grid := func(src TraceSource) []Request {
		reqs = reqs[:0]
		for _, h := range []Heuristic{ILRNE, ILREXP, IEXP} {
			for _, g := range []Geometry{Geometry512, Geometry4K, Geometry32K} {
				reqs = append(reqs, add(Request{
					RTM: &RTMConfig{Geometry: g, Heuristic: h, N: 4}, Skip: skip, Budget: budget,
				}, src))
			}
		}
		reqs = append(reqs,
			add(Request{RTM: &RTMConfig{Geometry: Geometry4K, Heuristic: ILREXP, InvalidateOnWrite: true}, Skip: skip, Budget: budget}, src),
			add(Request{Study: &StudyConfig{Budget: budget, Skip: skip, Window: 256}}, src),
			add(Request{VP: &VPConfig{Window: 256}, Skip: skip, Budget: budget}, src))
		return append([]Request(nil), reqs...)
	}

	run := func(t *testing.T, opts BatchOptions, src TraceSource, setup func(b *Batcher)) []Result {
		t.Helper()
		b := NewBatcher(opts)
		defer b.Close()
		if setup != nil {
			setup(b)
		}
		res, err := b.RunBatch(ctx, grid(src))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	live := run(t, BatchOptions{}, nil, nil)
	check := func(name string, got []Result) {
		t.Helper()
		for i := range live {
			if got[i].Cached {
				t.Fatalf("%s: cell %d answered from cache; equivalence not actually tested", name, i)
			}
			if !reflect.DeepEqual(payload(live[i]), payload(got[i])) {
				t.Errorf("%s: cell %d diverges from live execution:\nlive   %+v\nreplay %+v",
					name, i, payload(live[i]), payload(got[i]))
			}
		}
	}

	// File-backed: every replay decodes the container incrementally.
	fileRes := run(t, BatchOptions{}, TraceFile(path), nil)
	check("file stream", fileRes)

	// Disk-tier-backed: a tiny memory tier keeps the trace on disk
	// (below the promote threshold nothing is ever materialised).
	diskRes := run(t, BatchOptions{TraceStoreBytes: 4096, TraceDir: t.TempDir()},
		TraceRef(rec.Digest()),
		func(b *Batcher) {
			f := bytes.NewBuffer(nil)
			if _, err := rec.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			info, err := b.StoreTraceFrom(f)
			if err != nil {
				t.Fatal(err)
			}
			if info.Tier != "disk" {
				t.Fatalf("upload landed in tier %q, want disk", info.Tier)
			}
			if st := b.Stats(); st.TracePromotes != 0 {
				t.Fatalf("trace promoted before any lookup: %+v", st)
			}
		})
	check("disk tier stream", diskRes)
}

// TestDiskTierStore: write-through, eviction survival, promotion of
// small disk hits, per-tier listing/stats, and the streamed download.
func TestDiskTierStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := NewBatcher(BatchOptions{TraceStoreBytes: 1 << 20, TraceDir: dir})
	defer b.Close()

	rec, err := Record(ctx, RecordSpec{Workload: "li", Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	digest, err := b.StoreTrace(rec)
	if err != nil {
		t.Fatal(err)
	}

	// Write-through: the digest-named file exists and the listing shows
	// both tiers.
	st := b.Stats()
	if st.TraceSpills != 1 || st.TraceDisk != 1 || st.TraceDiskBytes == 0 {
		t.Fatalf("after write-through: %+v", st)
	}
	infos := b.Traces()
	if len(infos) != 1 || infos[0].Tier != "memory+disk" || infos[0].DiskBytes == 0 {
		t.Fatalf("listing %+v", infos)
	}

	// The download serves the stored bytes; they reload to the digest.
	var buf bytes.Buffer
	n, ok, err := b.WriteTraceTo(digest, &buf)
	if !ok || err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTraceTo = %d, %v, %v", n, ok, err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != digest {
		t.Fatalf("download digest %s, want %s", back.Digest(), digest)
	}

	// A second Batcher over the same directory starts with an empty
	// store: uploading the same bytes is deduplicated against the
	// existing file (no second spill file write), and a small disk-only
	// trace is promoted into memory on first replay.
	b2 := NewBatcher(BatchOptions{TraceStoreBytes: 1 << 20, TraceDir: dir})
	defer b2.Close()
	info, err := b2.StoreTraceFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != digest || info.Tier != "disk" {
		t.Fatalf("re-upload info %+v", info)
	}
	res, err := b2.Run(ctx, Request{Trace: TraceRef(digest), Study: &StudyConfig{Budget: 10_000, Window: 64}})
	if err != nil || res.Err != nil {
		t.Fatalf("disk-tier replay: %v / %v", err, res.Err)
	}
	st2 := b2.Stats()
	if st2.TracePromotes != 1 {
		t.Errorf("small disk hit not promoted: %+v", st2)
	}
	if got := b2.Traces(); len(got) != 1 || got[0].Tier != "memory+disk" {
		t.Errorf("post-promotion listing %+v", got)
	}

	// A restarted store over the same directory rehydrates its disk
	// index: the digest resolves with no re-upload at all.
	b3 := NewBatcher(BatchOptions{TraceStoreBytes: 1 << 20, TraceDir: dir})
	defer b3.Close()
	if got := b3.Traces(); len(got) != 1 || got[0].Digest != digest || got[0].Tier != "disk" ||
		got[0].Records != rec.Records() {
		t.Fatalf("rehydrated listing %+v", got)
	}
	res3, err := b3.Run(ctx, Request{Trace: TraceRef(digest), Study: &StudyConfig{Budget: 10_000, Window: 64}})
	if err != nil || res3.Err != nil {
		t.Fatalf("rehydrated replay: %v / %v", err, res3.Err)
	}
	if !reflect.DeepEqual(*res.Study, *res3.Study) {
		t.Error("rehydrated replay differs from the original store's")
	}
}

// TestTraceDrivenDDA: the Study kind's DDA path (ILPWindows) is
// trace-driven — execution-driven and replayed DDA are byte-identical
// — and the points are self-consistent.
func TestTraceDrivenDDA(t *testing.T) {
	const budget = 25_000
	ctx := context.Background()
	rec, err := Record(ctx, RecordSpec{Workload: "compress", Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &StudyConfig{Budget: budget, Window: 256, ILPWindows: []int{16, 256, 0}}

	b := NewBatcher(BatchOptions{})
	defer b.Close()
	live, err := b.Run(ctx, Request{Workload: "compress", Study: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Study.DDA) != 3 {
		t.Fatalf("DDA points: %+v", live.Study.DDA)
	}
	for i, p := range live.Study.DDA {
		if p.Window != cfg.ILPWindows[i] || p.Instructions != budget || p.IPC <= 0 || p.Cycles <= 0 {
			t.Errorf("DDA[%d] = %+v", i, p)
		}
	}
	// A wider window can only help: IPC(16) <= IPC(256) <= IPC(inf).
	if live.Study.DDA[0].IPC > live.Study.DDA[1].IPC || live.Study.DDA[1].IPC > live.Study.DDA[2].IPC {
		t.Errorf("IPC not monotone in window size: %+v", live.Study.DDA)
	}

	// Replayed DDA on a cold Batcher must reproduce execution exactly.
	cold := NewBatcher(BatchOptions{})
	defer cold.Close()
	replayed, err := cold.Run(ctx, Request{Trace: rec, Study: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Cached {
		t.Fatal("cold replay unexpectedly cached")
	}
	if !reflect.DeepEqual(*live.Study, *replayed.Study) {
		t.Errorf("trace-driven DDA differs from execution-driven:\nlive   %+v\nreplay %+v",
			*live.Study, *replayed.Study)
	}

	// And on a shared Batcher it hits the program-backed cache entry
	// (ILPWindows is part of the key: the plain study must not collide).
	shared, err := b.Run(ctx, Request{Trace: rec, Study: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Cached {
		t.Error("trace-backed DDA study missed the program-backed cache entry")
	}
	plain, err := b.Run(ctx, Request{Workload: "compress", Study: &StudyConfig{Budget: budget, Window: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cached {
		t.Error("study without ILPWindows shared the ILPWindows entry: cache key ignores ILPWindows")
	}
	if plain.Study.DDA != nil {
		t.Errorf("plain study carries DDA points: %+v", plain.Study.DDA)
	}
}

// TestCompositeIdentityDistinct: every source shape yields a distinct,
// non-empty cache identity — in particular a Concat over MergeWindows
// children (which have neither digest nor composite key of their own)
// must not collapse to one shared key across different programs.
func TestCompositeIdentityDistinct(t *testing.T) {
	ctx := context.Background()
	recA, err := Record(ctx, RecordSpec{Workload: "compress", Budget: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	recB, err := Record(ctx, RecordSpec{Workload: "li", Budget: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	idOf := func(src TraceSource) string {
		t.Helper()
		d, err := src.describe(nil)
		if err != nil {
			t.Fatal(err)
		}
		id := d.identity()
		if id == "" {
			t.Fatalf("%T yields an empty cache identity", src)
		}
		return id
	}
	a := idOf(Concat(MergeWindows(recA)))
	b := idOf(Concat(MergeWindows(recB)))
	if a == b {
		t.Fatalf("different streams share cache identity %q", a)
	}
	if x, y := idOf(Concat(recA)), idOf(Concat(recB)); x == y {
		t.Fatalf("different streams share cache identity %q", x)
	}
}
