package tlr

import (
	"context"
	"errors"
	"fmt"

	"github.com/tracereuse/tlr/internal/analytics"
	"github.com/tracereuse/tlr/internal/service"
	"github.com/tracereuse/tlr/internal/workload"
)

// This file is the unified public API: one context-aware Request/Run
// model covering all four simulation kinds (limit Study, realistic RTM,
// execution-driven Pipeline, value-prediction limit).  Run, RunBatch and
// StreamBatch are the only entry points; every other facade function is
// a thin deprecated wrapper over them.  All three route through the
// batch service, so identical requests — within a batch, across batches,
// or across callers — are simulated once and answered from cache.

// Kind names one of the four simulation kinds a Request can carry.
type Kind string

// The four simulation kinds.
const (
	// KindStudy is the reuse limit study of Figures 3–8 (instruction- and
	// trace-level reuse with infinite tables).
	KindStudy Kind = "study"
	// KindRTM is the realistic finite Reuse Trace Memory simulation of
	// Figure 9.
	KindRTM Kind = "rtm"
	// KindPipeline is the execution-driven superscalar pipeline model
	// (the paper's Figure 2 processor).
	KindPipeline Kind = "pipeline"
	// KindVP is the last-value-prediction limit study (the §1
	// speculation-vs-reuse comparison).
	KindVP Kind = "vp"
	// KindAnalyze is the reuse-distance analysis: exact binned LRU stack
	// distances per operand-location class over the request's stream.
	KindAnalyze Kind = "analyze"
)

// VPConfig configures a value-prediction limit study (KindVP).  The
// instruction bounds come from the Request's Skip and Budget.
type VPConfig struct {
	// Window is the instruction window size (0 = infinite).
	Window int
	// PredLat is the cycles from window entry to predicted values being
	// available (0 = the default of 1 cycle).
	PredLat float64
}

// AnalyzeConfig configures a reuse-distance analysis (KindAnalyze).
// The empty config is valid: the analysis has no knobs yet (bins and
// classes are fixed by the figure it reproduces), and the struct exists
// so future knobs stay additive.  The stream bounds come from the
// Request's Skip and Budget; uniquely among the kinds, a trace-sourced
// analyze request may leave Budget zero, which means "the rest of the
// recording".
type AnalyzeConfig struct{}

// AnalyzeResult is a completed reuse-distance analysis: one binned
// histogram per operand-location class (see internal/analytics).
type AnalyzeResult = analytics.Result

// Request is one simulation of any kind.
//
// Exactly one program field (Workload, Source, Prog or Trace) and
// exactly one configuration field (Study, RTM, Pipeline, VP or Analyze)
// must be set.  Skip and Budget bound RTM, Pipeline and VP simulations; Study
// carries its own bounds inside StudyConfig (set one or the other, not
// both — a Study config with zero Budget and Skip inherits the
// Request's).
//
// A Trace source stands in for the program in the trace-driven kinds
// (Study, RTM, VP): the engines consume the recorded stream instead of
// executing, and Skip counts records of that stream.  Pipeline is
// execution-driven and rejects trace sources with ErrTraceUnsupported.
type Request struct {
	// ID is an opaque label echoed in the Result (defaults to the
	// request's batch index).
	ID string

	// Workload names a built-in benchmark (see Workloads).
	Workload string
	// Source is assembly text, assembled through the service's program
	// cache.
	Source string
	// Prog is an already-assembled program.
	Prog *Program
	// Trace is a recorded instruction stream (see Record, TraceFile,
	// TraceReader, TraceRef) for the trace-driven kinds.
	Trace TraceSource

	// Study runs the reuse limit studies (KindStudy).
	Study *StudyConfig
	// RTM runs a realistic RTM simulation (KindRTM).
	RTM *RTMConfig
	// Pipeline runs the execution-driven processor model (KindPipeline).
	Pipeline *PipelineConfig
	// VP runs the value-prediction limit study (KindVP).
	VP *VPConfig
	// Analyze runs the reuse-distance analysis (KindAnalyze).
	Analyze *AnalyzeConfig

	// Skip is executed before measurement starts; Budget is the number
	// of retired instructions to simulate.  See the struct comment for
	// how Study interacts with these.
	Skip, Budget uint64
}

// Kind reports the request's simulation kind, or "" if the request does
// not have exactly one configuration set.
func (r Request) Kind() Kind {
	var k Kind
	n := 0
	if r.Study != nil {
		k, n = KindStudy, n+1
	}
	if r.RTM != nil {
		k, n = KindRTM, n+1
	}
	if r.Pipeline != nil {
		k, n = KindPipeline, n+1
	}
	if r.VP != nil {
		k, n = KindVP, n+1
	}
	if r.Analyze != nil {
		k, n = KindAnalyze, n+1
	}
	if n != 1 {
		return ""
	}
	return k
}

// Result is one finished Request.  Exactly the field matching Kind is
// set (none on error).
type Result struct {
	// Index is the request's position in the submitted slice; RunBatch
	// results are ordered by it, StreamBatch results carry it so clients
	// can reassemble deterministic order.
	Index int
	ID    string
	Kind  Kind

	Study    *StudyResult
	RTM      *RTMResult
	Pipeline *PipelineResult
	VP       *VPResult
	Analyze  *AnalyzeResult

	// Cached reports that the result came from the result cache (or was
	// coalesced onto an identical in-flight simulation) rather than a
	// fresh simulation.
	Cached bool
	// Node, when set by a clustered cmd/tlrserve, names the node (its
	// base URL) that produced the result.
	Node string
	// Forwarded reports that a clustered server routed the request to
	// the node holding its referenced trace instead of running it
	// locally; Node then names the executing peer.
	Forwarded bool
	Err       error
}

// Run executes one request on the shared default Batcher.  The context
// cancels the simulation mid-run; see Batcher.Run.
func Run(ctx context.Context, req Request) (Result, error) {
	return DefaultBatcher().Run(ctx, req)
}

// RunBatch executes a batch of requests on the shared default Batcher,
// returning results ordered by request index; see Batcher.RunBatch.
func RunBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	return DefaultBatcher().RunBatch(ctx, reqs)
}

// StreamBatch executes a batch of requests on the shared default
// Batcher, streaming results in completion order; see
// Batcher.StreamBatch.
func StreamBatch(ctx context.Context, reqs []Request) (<-chan Result, error) {
	return DefaultBatcher().StreamBatch(ctx, reqs)
}

// Run executes one request and returns its result.  The returned error
// is non-nil if the request was malformed (never submitted) or if the
// simulation failed; in the latter case the Result's Index, ID and Kind
// are still populated and Result.Err carries the same error.
func (b *Batcher) Run(ctx context.Context, req Request) (Result, error) {
	stream, err := b.StreamBatch(ctx, []Request{req})
	if err != nil {
		return Result{}, err
	}
	res := <-stream
	return res, res.Err
}

// RunBatch executes a batch of requests and returns the results ordered
// by request index.  Malformed requests fail the whole batch before any
// simulation starts, with every validation error joined into the
// returned error.  Otherwise all results are returned in full and the
// returned error joins every failed request's error (nil if none
// failed), so multi-request diagnostics are never lost.
//
// Cancelling ctx stops the batch promptly: requests not yet on a worker
// complete with the cancellation error, and running simulations stop at
// their next cancellation check.
func (b *Batcher) RunBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	stream, err := b.StreamBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(reqs))
	for r := range stream {
		out[r.Index] = r
	}
	var errs []error
	for i := range out {
		if out[i].Err != nil {
			errs = append(errs, fmt.Errorf("tlr: request %d (%s): %w", i, out[i].ID, out[i].Err))
		}
	}
	return out, errors.Join(errs...)
}

// StreamBatch submits a batch and returns a channel streaming each
// result as its simulation finishes (completion order, exactly
// len(reqs) results, then the channel closes).  Malformed requests fail
// the whole batch before any simulation starts, with every validation
// error joined.
//
// Cancelling ctx mid-batch still delivers exactly len(reqs) results:
// requests not yet on a worker complete immediately with the
// cancellation error, and running simulations stop at their next
// cancellation check.  The channel is buffered for the whole batch, so
// abandoning it leaks nothing.
func (b *Batcher) StreamBatch(ctx context.Context, reqs []Request) (<-chan Result, error) {
	sjobs := make([]service.Job, len(reqs))
	kinds := make([]Kind, len(reqs))
	var errs []error
	for i, r := range reqs {
		sj, kind, err := b.serviceJob(i, r)
		if err != nil {
			errs = append(errs, fmt.Errorf("tlr: request %d: %w", i, err))
			continue
		}
		sjobs[i] = sj
		kinds[i] = kind
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	batch := b.svc.Submit(ctx, sjobs, 0)
	out := make(chan Result, len(reqs))
	go func() {
		defer close(out)
		for i := 0; i < batch.Len(); i++ {
			r := <-batch.Results()
			out <- resultFromService(r, kinds[r.Index])
		}
	}()
	return out, nil
}

// resultFromService converts one service result into the public form.
func resultFromService(r service.Result, kind Kind) Result {
	res := Result{Index: r.Index, ID: r.ID, Kind: kind, Cached: r.Cached, Err: r.Err}
	if r.Err != nil {
		return res
	}
	switch kind {
	case KindStudy:
		o := r.Value.(service.StudyOutput)
		res.Study = &StudyResult{ILR: o.ILR, TLR: o.TLR, DDA: o.DDA}
	case KindRTM:
		o := r.Value.(RTMResult)
		res.RTM = &o
	case KindPipeline:
		o := r.Value.(PipelineResult)
		res.Pipeline = &o
	case KindVP:
		o := r.Value.(VPResult)
		res.VP = &o
	case KindAnalyze:
		o := r.Value.(analytics.Result)
		res.Analyze = &o
	}
	return res
}

// serviceJob is the canonical validation path: it checks one Request and
// builds its service job.  Every entry point — Run, RunBatch,
// StreamBatch, the deprecated wrappers, and cmd/tlrserve's HTTP API —
// funnels through it, so a request is judged by one rule set no matter
// how it arrives.
func (b *Batcher) serviceJob(index int, r Request) (service.Job, Kind, error) {
	id := r.ID
	if id == "" {
		id = fmt.Sprint(index)
	}
	progs := 0
	for _, on := range []bool{r.Workload != "", r.Source != "", r.Prog != nil, r.Trace != nil} {
		if on {
			progs++
		}
	}
	if progs != 1 {
		return service.Job{}, "", fmt.Errorf("exactly one of Workload, Source, Prog, Trace must be set (got %d)", progs)
	}
	kind := r.Kind()
	if kind == "" {
		return service.Job{}, "", fmt.Errorf("exactly one of Study, RTM, Pipeline, VP, Analyze must be set")
	}
	if r.Trace != nil && kind == KindPipeline {
		return service.Job{}, "", ErrTraceUnsupported
	}

	// makeSource maps the request's stream bounds onto the service
	// input: for programs the skip passes through; for trace sources
	// the described stream folds in its recording provenance (cache key
	// and skip offset) and checks coverage.
	var makeSource func(skip, budget uint64) (service.Source, uint64, error)
	switch {
	case r.Workload != "":
		w, ok := workload.ByName(r.Workload)
		if !ok {
			return service.Job{}, "", fmt.Errorf("unknown workload %q", r.Workload)
		}
		prog, err := w.Program()
		if err != nil {
			return service.Job{}, "", err
		}
		src := service.ProgSource("workload:"+r.Workload, prog)
		makeSource = func(skip, _ uint64) (service.Source, uint64, error) { return src, skip, nil }
	case r.Source != "":
		prog, err := b.svc.Program(r.Source)
		if err != nil {
			return service.Job{}, "", err
		}
		src := service.ProgSource(service.Fingerprint(prog), prog)
		makeSource = func(skip, _ uint64) (service.Source, uint64, error) { return src, skip, nil }
	case r.Prog != nil:
		src := service.ProgSource(service.Fingerprint(r.Prog), r.Prog)
		makeSource = func(skip, _ uint64) (service.Source, uint64, error) { return src, skip, nil }
	default:
		ms, err := b.traceSource(r.Trace)
		if err != nil {
			return service.Job{}, "", err
		}
		makeSource = ms
	}

	switch kind {
	case KindStudy:
		s := *r.Study
		if s.Budget == 0 && s.Skip == 0 {
			s.Budget, s.Skip = r.Budget, r.Skip
		} else if r.Budget != 0 || r.Skip != 0 {
			return service.Job{}, "", fmt.Errorf("Study carries its own Skip/Budget; don't also set them on the Request")
		}
		if s.Budget == 0 {
			return service.Job{}, "", fmt.Errorf("study requests need a positive Budget")
		}
		src, skip, err := makeSource(s.Skip, s.Budget)
		if err != nil {
			return service.Job{}, "", err
		}
		return service.StudyJob(id, src, service.StudyParams{
			Budget:       s.Budget,
			Skip:         skip,
			Window:       s.Window,
			ILRLatencies: s.ILRLatencies,
			TLRVariants:  s.TLRVariants,
			Strict:       s.Strict,
			MaxRunLen:    s.MaxRunLen,
			ILPWindows:   s.ILPWindows,
		}), kind, nil
	case KindRTM:
		if r.Budget == 0 {
			return service.Job{}, "", fmt.Errorf("rtm requests need a positive Budget")
		}
		if err := service.ValidGeometry(r.RTM.Geometry); err != nil {
			return service.Job{}, "", err
		}
		src, skip, err := makeSource(r.Skip, r.Budget)
		if err != nil {
			return service.Job{}, "", err
		}
		return service.RTMJob(id, src, service.RTMParams{
			Config: *r.RTM,
			Skip:   skip,
			Budget: r.Budget,
		}), kind, nil
	case KindPipeline:
		if r.Budget == 0 {
			return service.Job{}, "", fmt.Errorf("pipeline requests need a positive Budget")
		}
		if r.Pipeline.RTM != nil {
			if err := service.ValidGeometry(r.Pipeline.RTM.Geometry); err != nil {
				return service.Job{}, "", err
			}
		}
		src, skip, err := makeSource(r.Skip, r.Budget)
		if err != nil {
			return service.Job{}, "", err
		}
		return service.PipelineJob(id, src, service.PipelineParams{
			Config: *r.Pipeline,
			Skip:   skip,
			Budget: r.Budget,
		}), kind, nil
	case KindAnalyze:
		budget := r.Budget
		if budget == 0 {
			// A recorded trace has a known length, so "analyze the whole
			// recording" needs no explicit Budget — the common path for
			// foreign traces referenced by digest.
			if r.Trace == nil {
				return service.Job{}, "", fmt.Errorf("analyze requests on programs need a positive Budget")
			}
			d, err := r.Trace.describe(b)
			if err != nil {
				return service.Job{}, "", err
			}
			if d.base+d.records <= r.Skip {
				return service.Job{}, "", fmt.Errorf("analyze Skip %d leaves no records of the %d-record trace", r.Skip, d.records)
			}
			budget = d.base + d.records - r.Skip
		}
		src, skip, err := makeSource(r.Skip, budget)
		if err != nil {
			return service.Job{}, "", err
		}
		return service.AnalyzeJob(id, src, service.AnalyzeParams{
			Skip:   skip,
			Budget: budget,
		}), kind, nil
	default: // KindVP
		if r.Budget == 0 {
			return service.Job{}, "", fmt.Errorf("vp requests need a positive Budget")
		}
		src, skip, err := makeSource(r.Skip, r.Budget)
		if err != nil {
			return service.Job{}, "", err
		}
		return service.VPJob(id, src, service.VPParams{
			Window:  r.VP.Window,
			PredLat: r.VP.PredLat,
			Skip:    skip,
			Budget:  r.Budget,
		}), kind, nil
	}
}
