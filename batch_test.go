package tlr

import (
	"testing"
)

func TestMeasureBatchMixedKinds(t *testing.T) {
	jobs := []BatchJob{
		{Workload: "compress", RTM: &RTMConfig{Geometry: Geometry512, Heuristic: ILREXP},
			Skip: 500, Budget: 10_000},
		{Workload: "li", Study: &StudyConfig{Budget: 10_000, Skip: 500, Window: 256}},
	}
	b := NewBatcher(BatchOptions{Workers: 2})
	defer b.Close()
	res, err := b.Measure(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RTM == nil || res[0].Study != nil {
		t.Errorf("job 0 should be an RTM result: %+v", res[0])
	}
	if res[1].Study == nil || res[1].RTM != nil {
		t.Errorf("job 1 should be a study result: %+v", res[1])
	}
	if res[1].Study.TLR.Speedups[0] < 1 {
		t.Errorf("TLR speedup %v < 1", res[1].Study.TLR.Speedups)
	}

	// The same study through the direct facade must agree exactly.
	w, _ := WorkloadByName("li")
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := MeasureReuse(prog, StudyConfig{Budget: 10_000, Skip: 500, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	if direct.TLR.Speedups[0] != res[1].Study.TLR.Speedups[0] {
		t.Errorf("batch study %v != direct study %v",
			res[1].Study.TLR.Speedups[0], direct.TLR.Speedups[0])
	}

	// Rerunning the batch is answered from cache with identical values.
	res2, err := b.Measure(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res2 {
		if !res2[i].Cached {
			t.Errorf("job %d not cached on second run", i)
		}
	}
	if res2[0].RTM.ReusedFraction() != res[0].RTM.ReusedFraction() {
		t.Error("cached RTM result differs")
	}
	if st := b.Stats(); st.Ran != 2 || st.CacheHits != 2 {
		t.Errorf("stats = %+v, want 2 ran and 2 cache hits", st)
	}
}

func TestMeasureBatchSourceJobs(t *testing.T) {
	const src = `
main:   ldi  r9, 1000000
loop:   ldi  r1, 7
        add  r2, r2, r1
        subi r9, r9, 1
        bgtz r9, loop
        halt
`
	jobs := []BatchJob{
		{Source: src, RTM: &RTMConfig{Geometry: Geometry512, Heuristic: IEXP, N: 2}, Budget: 5_000},
		{Source: src, RTM: &RTMConfig{Geometry: Geometry512, Heuristic: IEXP, N: 2}, Budget: 5_000},
	}
	b := NewBatcher(BatchOptions{Workers: 2})
	defer b.Close()
	res, err := b.Measure(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Identical source + config: the second job coalesces or hits cache.
	if !res[0].Cached && !res[1].Cached {
		t.Errorf("identical jobs should share one simulation: %+v", b.Stats())
	}
	if res[0].RTM.Total() != res[1].RTM.Total() {
		t.Error("identical jobs returned different results")
	}
}

func TestMeasureBatchValidation(t *testing.T) {
	b := NewBatcher(BatchOptions{Workers: 1})
	defer b.Close()
	bad := [][]BatchJob{
		{{RTM: &RTMConfig{Geometry: Geometry512}, Budget: 100}},                   // no program
		{{Workload: "compress"}},                                                  // no config
		{{Workload: "nope", RTM: &RTMConfig{Geometry: Geometry512}, Budget: 100}}, // unknown workload
		{{Workload: "compress", RTM: &RTMConfig{Geometry: Geometry512}}},          // no budget
		{{Workload: "compress", Source: "x",
			RTM: &RTMConfig{Geometry: Geometry512}, Budget: 100}}, // two programs
	}
	for i, jobs := range bad {
		if _, err := b.Measure(jobs); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
